// rvhpc::sim — interval backend: determinism, memsim agreement, engine
// dispatch, and DNR parity with the analytic model.
//
// The interval backend's contract (DESIGN.md §12) is threefold: it is a
// *pure deterministic* function like model::predict (so the engine's
// bit-identity and memoisation guarantees extend to backend=interval), it
// drives the *real* memsim::Hierarchy (so its hit/miss behaviour can never
// silently drift from the simulator the Table 1 reproduction trusts), and
// it shares the analytic model's feasibility rules (so a DNR point is a
// DNR point on both backends, whichever mechanism a client picks).

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "engine/backend.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "memsim/hierarchy.hpp"
#include "memsim/profile.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "obs/trace.hpp"
#include "sim/interval.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

model::RunConfig paper_cfg(const arch::MachineModel& m, Kernel k, int cores) {
  return model::paper_run_config(m, k, cores);
}

sim::IntervalConfig small_cfg() {
  sim::IntervalConfig icfg;
  icfg.sim_ops = 2000;  // keep sanitiser runs fast; mechanisms unchanged
  return icfg;
}

}  // namespace

// --- determinism ------------------------------------------------------------

TEST(SimInterval, SimulateIsBitIdentical) {
  const arch::MachineModel& m = arch::machine(MachineId::Sg2044);
  const auto sig = model::signature(Kernel::CG, ProblemClass::C);
  const auto cfg = paper_cfg(m, Kernel::CG, 64);

  const sim::IntervalReport a = sim::simulate(m, sig, cfg, small_cfg());
  const sim::IntervalReport b = sim::simulate(m, sig, cfg, small_cfg());

  ASSERT_TRUE(a.prediction.ran);
  // Exact equality, not near-equality: simulate() must be pure.
  EXPECT_EQ(a.prediction.seconds, b.prediction.seconds);
  EXPECT_EQ(a.prediction.mops, b.prediction.mops);
  EXPECT_EQ(a.prediction.achieved_bw_gbs, b.prediction.achieved_bw_gbs);
  EXPECT_EQ(a.counters.accesses, b.counters.accesses);
  EXPECT_EQ(a.counters.dram_lines, b.counters.dram_lines);
  EXPECT_EQ(a.counters.level_hits, b.counters.level_hits);
  EXPECT_EQ(a.counters.dispatch_cycles, b.counters.dispatch_cycles);
  EXPECT_EQ(a.counters.stream_stall_cycles, b.counters.stream_stall_cycles);
  EXPECT_EQ(a.counters.latency_stall_cycles, b.counters.latency_stall_cycles);
}

TEST(SimInterval, SeedChangesTheRunButNotItsShape) {
  const arch::MachineModel& m = arch::machine(MachineId::Sg2042);
  const auto sig = model::signature(Kernel::IS, ProblemClass::C);
  const auto cfg = paper_cfg(m, Kernel::IS, 32);

  sim::IntervalConfig icfg = small_cfg();
  const auto a = sim::simulate(m, sig, cfg, icfg);
  icfg.seed = 0xfeedULL;
  const auto b = sim::simulate(m, sig, cfg, icfg);

  // A different address stream gives (slightly) different totals, but the
  // extrapolated prediction stays in the same regime.
  ASSERT_TRUE(a.prediction.ran && b.prediction.ran);
  EXPECT_GT(a.prediction.seconds, 0.0);
  EXPECT_NEAR(a.prediction.seconds / b.prediction.seconds, 1.0, 0.25);
  EXPECT_EQ(a.prediction.breakdown.dominant, b.prediction.breakdown.dominant);
}

// --- memsim agreement (satellite 3) -----------------------------------------

// The interval core and a hand-driven memsim::Hierarchy, fed the identical
// SignatureStream, must report the same access and per-level hit counts —
// sim/ may not wrap memsim with semantics of its own.
TEST(SimInterval, MissCountsAgreeWithRawHierarchy) {
  const arch::MachineModel& m = arch::machine(MachineId::Sg2044);
  const auto sig = model::signature(Kernel::CG, ProblemClass::C);
  const int cores = 64;
  const auto cfg = paper_cfg(m, Kernel::CG, cores);
  const sim::IntervalConfig icfg = small_cfg();

  const sim::IntervalReport rep = sim::simulate(m, sig, cfg, icfg);
  ASSERT_TRUE(rep.prediction.ran);

  // Rebuild the identical per-core machine slice and footprints.
  const double scale = sim::footprint_scale(sig, cores, icfg);
  EXPECT_EQ(scale, rep.counters.footprint_scale);
  const int line_bytes = m.caches[0].line_bytes;
  const auto scaled = [&](double mib) {
    return static_cast<std::uint64_t>(
        std::max(0.0, mib * 1024.0 * 1024.0 * scale));
  };
  const arch::MachineModel slice = sim::per_core_slice(m, cores, scale);
  memsim::Hierarchy hier(slice, /*cores=*/1);
  sim::SignatureStream stream(sig, scaled(sig.working_set_mib / cores),
                              scaled(sig.random_footprint_mib), line_bytes,
                              icfg.seed);

  std::uint64_t accesses = 0;
  std::vector<sim::SimAccess> ops;
  for (std::uint64_t op = 0; op < icfg.sim_ops; ++op) {
    ops.clear();
    stream.next_op(ops);
    accesses += ops.size();
    for (const sim::SimAccess& a : ops) hier.access(0, a.addr, a.is_write);
  }

  EXPECT_EQ(accesses, rep.counters.accesses);
  ASSERT_EQ(hier.levels(), rep.counters.level_hits.size());
  for (std::size_t i = 0; i < hier.levels(); ++i) {
    EXPECT_EQ(hier.level_stats(i).hits, rep.counters.level_hits[i])
        << "level " << i;
  }
}

// Two independent memsim consumers at once: the interval backend and the
// Table 1 stall profiler, on separate threads.  Every Hierarchy/DramModel
// is call-local state, so this must be race-free — the TSan job in
// scripts/check.sh runs this test to prove it.
TEST(SimInterval, ConcurrentWithTraceProfileUnderTsan) {
  const arch::MachineModel& m = arch::machine(MachineId::Sg2042);
  const auto sig = model::signature(Kernel::MG, ProblemClass::C);
  const auto cfg = paper_cfg(m, Kernel::MG, 16);

  model::Prediction from_sim;
  memsim::StallReport from_profile;
  std::thread t_sim([&] {
    for (int i = 0; i < 3; ++i) {
      from_sim = sim::simulate(m, sig, cfg, small_cfg()).prediction;
    }
  });
  std::thread t_prof([&] {
    memsim::ProfileConfig pc;
    pc.cores = 4;
    pc.ops_per_core = 2000;
    pc.footprint_scale = 0.01;
    from_profile = memsim::simulate_stalls(m, Kernel::MG, pc);
  });
  t_sim.join();
  t_prof.join();

  EXPECT_TRUE(from_sim.ran);
  EXPECT_GT(from_profile.total_cycles, 0.0);
}

// --- prediction shape -------------------------------------------------------

TEST(SimInterval, BottleneckSanityAcrossKernels) {
  const arch::MachineModel& sg2042 = arch::machine(MachineId::Sg2042);
  // EP is embarrassingly parallel compute: no DRAM pressure to speak of.
  const auto ep = sim::predict_interval(
      sg2042, model::signature(Kernel::EP, ProblemClass::C),
      paper_cfg(sg2042, Kernel::EP, 64));
  ASSERT_TRUE(ep.ran);
  EXPECT_EQ(ep.breakdown.dominant, model::Bottleneck::Compute);

  // STREAM triad at full chip saturates the four DDR4 channels.
  const auto triad = sim::predict_interval(
      sg2042, model::signature(Kernel::StreamTriad, ProblemClass::C),
      paper_cfg(sg2042, Kernel::StreamTriad, 64));
  ASSERT_TRUE(triad.ran);
  EXPECT_EQ(triad.breakdown.dominant, model::Bottleneck::StreamBandwidth);
  EXPECT_GT(triad.achieved_bw_gbs, 10.0);
  // Supply is bounded by the machine's sustained chip bandwidth.
  EXPECT_LT(triad.achieved_bw_gbs,
            sg2042.memory.chip_stream_bw_gbs() * sg2042.memory.read_bw_bonus);
}

TEST(SimInterval, DnrParityWithAnalyticBackend) {
  // FT class B exceeds the Allwinner D1's 1 GiB DRAM — the published DNR.
  const arch::MachineModel& d1 = arch::machine(MachineId::AllwinnerD1);
  const auto sig = model::signature(Kernel::FT, ProblemClass::B);
  const auto cfg = paper_cfg(d1, Kernel::FT, 1);
  const auto analytic = model::predict(d1, sig, cfg);
  const auto interval = sim::predict_interval(d1, sig, cfg);
  ASSERT_FALSE(analytic.ran);
  ASSERT_FALSE(interval.ran);
  EXPECT_EQ(analytic.dnr_reason, interval.dnr_reason);

  // Core-count overflow: same rule, same message, on both backends.
  auto over = cfg;
  over.cores = d1.cores + 1;
  const auto a2 = model::predict(d1, sig, over);
  const auto i2 = sim::predict_interval(d1, sig, over);
  ASSERT_FALSE(a2.ran);
  ASSERT_FALSE(i2.ran);
  EXPECT_EQ(a2.dnr_reason, i2.dnr_reason);
}

// --- engine dispatch --------------------------------------------------------

TEST(SimInterval, BackendIsPartOfTheMemoKey) {
  const arch::MachineModel& m = arch::machine(MachineId::Sg2044);
  const auto sig = model::signature(Kernel::MG, ProblemClass::C);
  const auto cfg = paper_cfg(m, Kernel::MG, 64);

  const engine::PredictionRequest analytic(m, sig, cfg, "",
                                           engine::Backend::Analytic);
  const engine::PredictionRequest interval(m, sig, cfg, "",
                                           engine::Backend::Interval);
  EXPECT_NE(analytic.key(), interval.key());
  // Default-constructed backend is analytic, and the key is stable.
  EXPECT_EQ(engine::PredictionRequest(m, sig, cfg).key(), analytic.key());
}

TEST(SimInterval, EvaluatorDispatchesPerRequestBackend) {
  const arch::MachineModel& m = arch::machine(MachineId::Sg2044);
  const auto sig = model::signature(Kernel::CG, ProblemClass::C);
  const auto cfg = paper_cfg(m, Kernel::CG, 64);

  engine::BatchEvaluator eval(engine::BatchEvaluator::Options{2, 64});
  engine::RequestSet set;
  set.add({m, sig, cfg, "a", engine::Backend::Analytic});
  set.add({m, sig, cfg, "i", engine::Backend::Interval});
  const auto results = eval.evaluate(set);
  ASSERT_EQ(results.size(), 2u);

  // Both mechanisms must match their direct entry points bit for bit...
  EXPECT_EQ(results[0].prediction.seconds, model::predict(m, sig, cfg).seconds);
  EXPECT_EQ(results[1].prediction.seconds,
            sim::predict_interval(m, sig, cfg).seconds);
  // ...and the two backends are genuinely different models.
  EXPECT_NE(results[0].prediction.seconds, results[1].prediction.seconds);

  // backend_for() exposes the same singletons the evaluator used.
  EXPECT_EQ(engine::backend_for(engine::Backend::Analytic).id(),
            engine::Backend::Analytic);
  EXPECT_EQ(engine::backend_for(engine::Backend::Interval).id(),
            engine::Backend::Interval);
}

TEST(SimInterval, ParseBackendRoundTripsAndRejects) {
  EXPECT_EQ(engine::parse_backend("analytic"), engine::Backend::Analytic);
  EXPECT_EQ(engine::parse_backend("interval"), engine::Backend::Interval);
  EXPECT_EQ(engine::to_string(engine::Backend::Analytic), "analytic");
  EXPECT_EQ(engine::to_string(engine::Backend::Interval), "interval");
  EXPECT_THROW((void)engine::parse_backend("quantum"), std::invalid_argument);
  EXPECT_THROW((void)engine::parse_backend(""), std::invalid_argument);
}

// --- obs attribution (satellite 2) ------------------------------------------

TEST(SimInterval, TraceRecordsCarryIntervalBackend) {
  const arch::MachineModel& m = arch::machine(MachineId::Sg2044);
  const auto sig = model::signature(Kernel::StreamTriad, ProblemClass::C);
  const auto cfg = paper_cfg(m, Kernel::StreamTriad, 64);

  obs::SessionScope scope;
  (void)sim::predict_interval(m, sig, cfg);
  (void)model::predict(m, sig, cfg);

  const auto& preds = scope.session().predictions();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].backend, "interval");
  EXPECT_EQ(preds[1].backend, "analytic");

  // Phase decomposition still sums to the predicted total per backend.
  for (const auto& p : preds) {
    double sum = 0.0;
    for (const auto& ph : p.phases) sum += ph.seconds;
    EXPECT_NEAR(sum, p.seconds, 1e-9) << p.backend;
  }
}
