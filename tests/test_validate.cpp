// Tests for rvhpc::arch::validate — every invariant must be enforced.

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "arch/validate.hpp"

namespace rvhpc::arch {
namespace {

MachineModel good() { return machine(MachineId::Sg2044); }

bool flags(const MachineModel& m, const std::string& field) {
  for (const auto& issue : validate(m)) {
    if (issue.field.find(field) != std::string::npos) return true;
  }
  return false;
}

TEST(Validate, GoodMachinePasses) { EXPECT_TRUE(is_valid(good())); }

TEST(Validate, EmptyName) {
  MachineModel m = good();
  m.name.clear();
  EXPECT_TRUE(flags(m, "name"));
}

TEST(Validate, ZeroCores) {
  MachineModel m = good();
  m.cores = 0;
  EXPECT_TRUE(flags(m, "cores"));
}

TEST(Validate, ClusterLargerThanChip) {
  MachineModel m = good();
  m.cluster_size = m.cores + 1;
  EXPECT_TRUE(flags(m, "cluster_size"));
}

TEST(Validate, NegativeClock) {
  MachineModel m = good();
  m.core.clock_ghz = -1.0;
  EXPECT_TRUE(flags(m, "clock"));
}

TEST(Validate, IssueNarrowerThanDecode) {
  MachineModel m = good();
  m.core.issue_width = m.core.decode_width - 1;
  EXPECT_TRUE(flags(m, "issue_width"));
}

TEST(Validate, SustainedOpcBeyondIssueWidth) {
  MachineModel m = good();
  m.core.sustained_scalar_opc = m.core.issue_width + 1.0;
  EXPECT_TRUE(flags(m, "sustained_scalar_opc"));
}

TEST(Validate, VectorWidthNotMultipleOf64) {
  MachineModel m = good();
  m.core.vector.width_bits = 100;
  EXPECT_TRUE(flags(m, "width_bits"));
}

TEST(Validate, GatherEfficiencyOutOfRange) {
  MachineModel m = good();
  m.core.vector.gather_efficiency = 1.5;
  EXPECT_TRUE(flags(m, "gather_efficiency"));
}

TEST(Validate, MissingCaches) {
  MachineModel m = good();
  m.caches.clear();
  EXPECT_TRUE(flags(m, "caches"));
}

TEST(Validate, NonPowerOfTwoLine) {
  MachineModel m = good();
  m.caches[0].line_bytes = 48;
  EXPECT_TRUE(flags(m, "caches[0]"));
}

TEST(Validate, ShrinkingLevels) {
  MachineModel m = good();
  m.caches[1].size_bytes = m.caches[0].size_bytes / 2;
  EXPECT_TRUE(flags(m, "caches[1]"));
}

TEST(Validate, SharingMustNotDecrease) {
  MachineModel m = good();
  m.caches[2].shared_by_cores = 1;  // L3 less shared than L2
  EXPECT_TRUE(flags(m, "caches[2]"));
}

TEST(Validate, LatencyMustNotDecrease) {
  MachineModel m = good();
  m.caches[2].latency_cycles = 1;
  EXPECT_TRUE(flags(m, "caches[2]"));
}

TEST(Validate, ChannelsFewerThanControllers) {
  MachineModel m = good();
  m.memory.channels = m.memory.controllers - 1;
  EXPECT_TRUE(flags(m, "channels"));
}

TEST(Validate, StreamEfficiencyAboveOne) {
  MachineModel m = good();
  m.memory.stream_efficiency = 1.2;
  EXPECT_TRUE(flags(m, "stream_efficiency"));
}

TEST(Validate, CoreOutDrawsChip) {
  MachineModel m = good();
  m.memory.per_core_bw_gbs = m.memory.chip_stream_bw_gbs() * 2.0;
  EXPECT_TRUE(flags(m, "per_core_bw_gbs"));
}

TEST(Validate, NumaRegionsBeyondCores) {
  MachineModel m = good();
  m.memory.numa_regions = m.cores + 1;
  EXPECT_TRUE(flags(m, "numa_regions"));
}

TEST(Validate, NonPositiveDram) {
  MachineModel m = good();
  m.memory.dram_gib = 0.0;
  EXPECT_TRUE(flags(m, "dram_gib"));
}

TEST(Validate, FormatListsEveryIssue) {
  MachineModel m = good();
  m.cores = 0;
  m.core.clock_ghz = 0.0;
  const auto issues = validate(m);
  ASSERT_GE(issues.size(), 2u);
  const std::string text = format_issues(issues);
  for (const auto& i : issues) {
    EXPECT_NE(text.find(i.field), std::string::npos);
  }
}

}  // namespace
}  // namespace rvhpc::arch
