// rvhpc::net — TCP transport for the prediction service.
//
// The load-bearing guarantees: many concurrent clients each get exactly
// their own responses (attributed by id) over one shared Service; a
// misbehaving peer — oversized line, never-reading client, idle
// connection, mid-request disconnect — costs bounded memory and a
// structured goodbye, never a crash or a wedge; and SIGTERM drains like
// the stdio loop does: buffered requests answered, cache flushed.
//
// Every test runs a real Server on an ephemeral loopback port with the
// event loop on a background thread, and drives it with blocking client
// sockets (5 s receive timeouts so a regression fails instead of
// hanging).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/net.hpp"
#include "obs/json.hpp"
#include "serve/persist.hpp"
#include "serve/service.hpp"

namespace {

using namespace rvhpc;
using namespace std::chrono_literals;

/// RAII temp path: removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// A Service + Server on an ephemeral loopback port, loop on a background
/// thread.  Stops and joins on destruction.
struct LoopbackServer {
  serve::Service service;
  net::Server server;
  std::ostringstream log;
  std::thread loop;

  explicit LoopbackServer(net::ServerOptions nopts = {},
                          serve::Service::Options sopts = one_job())
      : service(std::move(sopts)), server(service, nopts) {
    server.open(log);
    loop = std::thread([this] { server.run(log); });
  }

  ~LoopbackServer() {
    server.stop();
    if (loop.joinable()) loop.join();
  }

  static serve::Service::Options one_job() {
    serve::Service::Options o;
    o.jobs = 1;
    return o;
  }

  /// Waits (bounded) for `pred` over the server stats; false on timeout.
  template <typename Pred>
  bool wait_for(Pred pred, std::chrono::milliseconds budget = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred(server.stats())) return true;
      std::this_thread::sleep_for(2ms);
    }
    return pred(server.stats());
  }
};

/// Minimal blocking test client with a receive timeout.
struct Client {
  int fd = -1;
  std::string buffered;

  explicit Client(std::uint16_t port, int rcvbuf = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    timeval tv{5, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    if (rcvbuf > 0) {
      // Before connect(), so the shrunken window is what gets advertised.
      (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] bool connected() const { return fd >= 0; }

  /// Sends every byte; false once the server has hung up on us.
  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void shutdown_write() const { (void)::shutdown(fd, SHUT_WR); }

  /// One response line (without '\n'), or empty on EOF/timeout.
  std::string recv_line() {
    while (true) {
      const std::size_t nl = buffered.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered.substr(0, nl);
        buffered.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffered.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads until the server closes; returns everything (with newlines).
  std::string recv_until_eof() {
    std::string all = std::move(buffered);
    buffered.clear();
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return all;
      all.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

std::string request_line(const std::string& id, const std::string& kernel,
                         int cores) {
  return "{\"id\": \"" + id + "\", \"machine\": \"sg2044\", \"kernel\": \"" +
         kernel + "\", \"cores\": " + std::to_string(cores) + "}\n";
}

// --- listener -------------------------------------------------------------

TEST(NetListener, EphemeralPortIsReported) {
  net::Listener listener;
  listener.open(0);
  EXPECT_TRUE(listener.is_open());
  EXPECT_NE(listener.port(), 0) << "port 0 must resolve to the bound port";
  listener.close();
  EXPECT_FALSE(listener.is_open());
}

TEST(NetListener, PortCollisionThrowsInsteadOfServingBlind) {
  net::Listener first;
  first.open(0);
  net::Listener second;
  EXPECT_THROW(second.open(first.port()), std::runtime_error);
}

// --- concurrent clients ---------------------------------------------------

TEST(NetServer, FourConcurrentClientsGetTheirOwnResponses) {
  LoopbackServer s;
  constexpr int kClients = 4;
  constexpr int kRequests = 6;
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client cl(s.server.port());
      if (!cl.connected()) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        // Distinct (id, cores) per request: the response must echo OUR id
        // and OUR cores even while three other clients interleave.
        const std::string id =
            "c" + std::to_string(c) + "-r" + std::to_string(r);
        const int cores = 1 + c * kRequests + r;
        if (!cl.send_all(request_line(id, "CG", cores))) {
          ++failures;
          return;
        }
        const std::string line = cl.recv_line();
        try {
          const obs::json::Value v = obs::json::parse(line);
          if (v.find("id")->str != id ||
              v.find("status")->str != "ok" ||
              static_cast<int>(v.find("cores")->num) != cores) {
            ++failures;
          }
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  const net::ServerStats stats = s.server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.answered, static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(s.service.stats().received,
            static_cast<std::uint64_t>(kClients * kRequests));
}

TEST(NetServer, IntervalBackendOverTcpIsDistinctAndSeparatelyCached) {
  // The ISSUE 7 acceptance path: a client sending backend=interval over
  // TCP must get the interval mechanism's answer, keyed separately from
  // the analytic twin it just warmed the shared cache with.
  LoopbackServer s;
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());

  const std::string point =
      R"("machine": "sg2044", "kernel": "CG", "class": "C", "cores": 64)";
  ASSERT_TRUE(cl.send_all("{\"id\": \"a\", " + point + "}\n"));
  const obs::json::Value analytic = obs::json::parse(cl.recv_line());
  ASSERT_TRUE(cl.send_all("{\"id\": \"i\", " + point +
                          ", \"backend\": \"interval\"}\n"));
  const obs::json::Value interval = obs::json::parse(cl.recv_line());
  ASSERT_TRUE(cl.send_all("{\"id\": \"w\", " + point +
                          ", \"backend\": \"interval\"}\n"));
  const obs::json::Value warm = obs::json::parse(cl.recv_line());

  EXPECT_EQ(analytic.find("status")->str, "ok");
  EXPECT_EQ(analytic.find("backend")->str, "analytic");
  EXPECT_EQ(interval.find("backend")->str, "interval");
  // Same point, different mechanism, different prediction — and the warm
  // analytic cache entry must NOT have answered the interval request.
  EXPECT_EQ(interval.find("cache")->str, "miss");
  EXPECT_NE(analytic.find("seconds")->num, interval.find("seconds")->num);
  // The repeat hits the interval entry, bit-identically.
  EXPECT_EQ(warm.find("cache")->str, "hit");
  EXPECT_EQ(warm.find("backend")->str, "interval");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.find("seconds")->num),
            std::bit_cast<std::uint64_t>(interval.find("seconds")->num));
}

TEST(NetServer, PipelinedClientDrainsOnHalfClose) {
  // The rvhpc-client protocol: send everything, shutdown the write side,
  // read until EOF.  Every non-blank line must be answered.
  LoopbackServer s;
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());
  std::string batch;
  for (int r = 0; r < 5; ++r) {
    batch += request_line("p" + std::to_string(r), "MG", 8 + r);
  }
  batch += "\n";  // blank line: consumed, never answered
  ASSERT_TRUE(cl.send_all(batch));
  cl.shutdown_write();

  const std::string all = cl.recv_until_eof();
  std::istringstream lines(all);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const obs::json::Value v = obs::json::parse(line);
    EXPECT_EQ(v.find("id")->str, "p" + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 5);
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_eof == 1;
  }));
}

// --- bounded buffers ------------------------------------------------------

TEST(NetServer, OversizedLineAnswersOverloadedAndDisconnects) {
  net::ServerOptions nopts;
  nopts.max_line_bytes = 256;
  nopts.poll_interval_ms = 10;
  LoopbackServer s(nopts);
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all(std::string(600, 'x')));  // no newline, ever

  const std::string line = cl.recv_line();
  const obs::json::Value v = obs::json::parse(line);
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "overloaded");
  EXPECT_NE(v.find("message")->str.find("256"), std::string::npos);
  EXPECT_TRUE(cl.recv_line().empty()) << "server must close after the error";
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_oversize == 1;
  }));
  EXPECT_EQ(s.service.stats().received, 0u)
      << "an oversized line is rejected by the transport, not the service";
}

TEST(NetServer, SlowReaderIsDisconnectedWithBoundedMemory) {
  net::ServerOptions nopts;
  nopts.max_write_buffer = 1024;  // ~3 responses
  nopts.so_sndbuf = 4096;  // keep the kernel from absorbing the pile-up
  nopts.poll_interval_ms = 10;
  LoopbackServer s(nopts);
  Client cl(s.server.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(cl.connected());

  // 300 requests (one predict, the rest cache hits), never reading a
  // byte: responses overflow the shrunken kernel buffers, pile up in the
  // server's write buffer until the bound trips, and the connection is
  // dropped.
  std::string batch;
  for (int r = 0; r < 300; ++r) {
    std::string id = "s";  // (two-step concat dodges GCC bug 105651)
    id += std::to_string(r);
    batch.append(request_line(id, "EP", 8));
  }
  (void)cl.send_all(batch);  // the server may hang up mid-send
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_slow_reader == 1;
  }));
  const net::ServerStats stats = s.server.stats();
  EXPECT_LT(stats.answered, 300u) << "the bound must trip before all 300";

  // The server is still healthy for a well-behaved client.
  Client good(s.server.port());
  ASSERT_TRUE(good.connected());
  ASSERT_TRUE(good.send_all(request_line("ok", "CG", 64)));
  const obs::json::Value v = obs::json::parse(good.recv_line());
  EXPECT_EQ(v.find("id")->str, "ok");
  EXPECT_EQ(v.find("status")->str, "ok");
}

// --- timeouts -------------------------------------------------------------

TEST(NetServer, IdleConnectionIsToldTimeoutAndClosed) {
  net::ServerOptions nopts;
  nopts.idle_timeout_ms = 50;
  nopts.poll_interval_ms = 10;
  LoopbackServer s(nopts);
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());
  // Send nothing: the farewell and EOF arrive on their own.
  const std::string line = cl.recv_line();
  const obs::json::Value v = obs::json::parse(line);
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "timeout");
  EXPECT_TRUE(cl.recv_line().empty());
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_idle == 1;
  }));
}

TEST(NetServer, SlowLorisPartialLineHitsHeaderDeadlineNotIdle) {
  net::ServerOptions nopts;
  nopts.idle_timeout_ms = 2000;  // generous: every drip resets it
  nopts.header_timeout_ms = 60;  // the deadline actually under test
  nopts.poll_interval_ms = 5;
  LoopbackServer s(nopts);
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());
  // Drip a request one byte at a time, never sending the newline: the
  // idle clock restarts on every byte, but the partial-request clock
  // started with the first byte and runs out mid-drip.
  const std::string partial = R"({"id": "loris", "machine": "sg2)";
  for (char c : partial) {
    if (!cl.send_all(std::string(1, c))) break;  // server hung up
    std::this_thread::sleep_for(5ms);
  }
  const obs::json::Value v = obs::json::parse(cl.recv_line());
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "timeout");
  EXPECT_TRUE(cl.recv_line().empty());
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_header_timeout == 1;
  }));
  EXPECT_EQ(s.server.stats().disconnect_idle, 0u)
      << "the header deadline, not the idle timeout, must attribute this";
}

// --- misbehaving peers ----------------------------------------------------

TEST(NetServer, MidRequestDisconnectDiscardsThePartialLine) {
  LoopbackServer s;
  {
    Client cl(s.server.port());
    ASSERT_TRUE(cl.connected());
    ASSERT_TRUE(cl.send_all(R"({"id": "half", "machine": "sg20)"));
  }  // gone mid-request, no newline
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_eof == 1;
  }));
  EXPECT_EQ(s.service.stats().received, 0u)
      << "a partial line must be discarded, not parsed";

  Client next(s.server.port());
  ASSERT_TRUE(next.connected());
  ASSERT_TRUE(next.send_all(request_line("whole", "CG", 32)));
  EXPECT_EQ(obs::json::parse(next.recv_line()).find("id")->str, "whole");
}

TEST(NetServer, ConnectionsPastTheCapAreRefusedPolitely) {
  net::ServerOptions nopts;
  nopts.max_connections = 1;
  nopts.poll_interval_ms = 10;
  LoopbackServer s(nopts);
  Client first(s.server.port());
  ASSERT_TRUE(first.connected());
  // A full round-trip guarantees the server registered `first` before the
  // second connect arrives.
  ASSERT_TRUE(first.send_all(request_line("one", "CG", 16)));
  ASSERT_FALSE(first.recv_line().empty());

  Client second(s.server.port());
  ASSERT_TRUE(second.connected()) << "the kernel accepts; the server refuses";
  const obs::json::Value v = obs::json::parse(second.recv_line());
  EXPECT_EQ(v.find("error")->str, "overloaded");
  EXPECT_TRUE(second.recv_line().empty());
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_refused == 1;
  }));
}

// --- shutdown -------------------------------------------------------------

TEST(NetServer, SigtermDrainsAndFlushesThePersistentCache) {
  TempFile cache("test_net_sigterm_cache.tmp.bin");
  serve::install_shutdown_handlers();
  serve::reset_shutdown();

  serve::Service::Options sopts = LoopbackServer::one_job();
  sopts.cache_file = cache.path;
  {
    LoopbackServer s({}, sopts);
    Client cl(s.server.port());
    ASSERT_TRUE(cl.connected());
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(cl.send_all(request_line("d" + std::to_string(r), "CG",
                                           8 << r)));
      ASSERT_FALSE(cl.recv_line().empty());
    }

    std::raise(SIGTERM);  // the handler sets the serve-wide drain flag
    s.loop.join();        // run() must return on its own
    EXPECT_TRUE(cl.recv_line().empty()) << "drain closes the connection";
    EXPECT_NE(s.log.str().find("net: drained"), std::string::npos);
    EXPECT_NE(s.log.str().find("checkpointed"), std::string::npos);

    // The flush happened during drain, before the Service died.
    engine::PredictionCache loaded(16);
    const serve::LoadResult r = serve::load_cache(cache.path, loaded);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.restored, 3u);
  }
  serve::reset_shutdown();
}

TEST(NetServer, StopAnswersBufferedRequestsBeforeClosing) {
  net::ServerOptions nopts;
  nopts.poll_interval_ms = 10;
  LoopbackServer s(nopts);
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());
  std::string batch;
  for (int r = 0; r < 4; ++r) {
    batch += request_line("b" + std::to_string(r), "MG", 4 + r);
  }
  ASSERT_TRUE(cl.send_all(batch));
  // Wait until the requests are inside the server, then pull the plug.
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.answered >= 4;
  }));
  s.server.stop();
  s.loop.join();

  const std::string all = cl.recv_until_eof();
  int count = 0;
  std::istringstream lines(all);
  std::string line;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 4) << "every admitted request is answered at drain";
}

// --- out-of-order completion (ISSUE 8) ------------------------------------

/// An uncached interval-backend request: the backend walks the whole
/// simulated timeline (~ms of compute), so it is the "slow" request the
/// async front end must not let block anyone else.
std::string slow_line(const std::string& id, int cores) {
  std::string line = "{";
  if (!id.empty()) line += "\"id\": \"" + id + "\", ";
  line += "\"machine\": \"sg2044\", \"kernel\": \"CG\", \"class\": \"C\", "
          "\"cores\": " + std::to_string(cores) +
          ", \"backend\": \"interval\"}\n";
  return line;
}

TEST(NetServer, SlowUncachedRequestDoesNotStallCachedPeer) {
  serve::Service::Options sopts;
  sopts.jobs = 2;
  net::ServerOptions nopts;
  nopts.shards = 2;
  LoopbackServer s(nopts, sopts);

  Client warm(s.server.port());
  ASSERT_TRUE(warm.connected());
  ASSERT_TRUE(warm.send_all(request_line("w", "MG", 8)));
  ASSERT_FALSE(warm.recv_line().empty());

  Client slow(s.server.port());
  Client hits(s.server.port());
  ASSERT_TRUE(slow.connected());
  ASSERT_TRUE(hits.connected());

  // 16 distinct uncached interval requests (~2 ms compute each) on one
  // connection; 16 cache hits on the other.  The hits are served inline
  // on their shard while the computes run on the pool, so every hit must
  // land before the slow batch's final response.
  constexpr int kEach = 16;
  std::string slow_batch;
  for (int i = 0; i < kEach; ++i) {
    slow_batch += slow_line("s" + std::to_string(i), 40 + i);
  }
  std::string hit_batch;
  for (int i = 0; i < kEach; ++i) {
    hit_batch += request_line("h" + std::to_string(i), "MG", 8);
  }
  ASSERT_TRUE(slow.send_all(slow_batch));
  ASSERT_TRUE(hits.send_all(hit_batch));

  const auto t0 = std::chrono::steady_clock::now();
  auto last_slow = t0;
  int slow_got = 0;
  std::thread slow_reader([&] {
    for (int i = 0; i < kEach; ++i) {
      if (slow.recv_line().empty()) return;
      last_slow = std::chrono::steady_clock::now();
      ++slow_got;
    }
  });
  auto last_hit = t0;
  int hits_got = 0;
  for (int i = 0; i < kEach; ++i) {
    const std::string line = hits.recv_line();
    if (line.empty()) break;
    EXPECT_EQ(obs::json::parse(line).find("cache")->str, "hit");
    last_hit = std::chrono::steady_clock::now();
    ++hits_got;
  }
  slow_reader.join();

  EXPECT_EQ(slow_got, kEach);
  EXPECT_EQ(hits_got, kEach);
  EXPECT_LT(last_hit, last_slow)
      << "cached responses queued behind another connection's compute";
}

TEST(NetServer, OutOfOrderIdsWithinOneConnection) {
  // One pool thread, one shard: while the pool is busy with the slow
  // request, the shard keeps admitting and answering the cached lines
  // behind it — id-carrying responses may overtake.
  LoopbackServer s;
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());
  for (int i = 0; i < 4; ++i) {  // warm the hit keys
    ASSERT_TRUE(cl.send_all(request_line("w" + std::to_string(i), "MG", 1 << i)));
    ASSERT_FALSE(cl.recv_line().empty());
  }

  std::string batch = slow_line("slow", 64);
  for (int i = 0; i < 4; ++i) {
    batch += request_line("h" + std::to_string(i), "MG", 1 << i);
  }
  ASSERT_TRUE(cl.send_all(batch));

  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) {
    const std::string line = cl.recv_line();
    ASSERT_FALSE(line.empty());
    order.push_back(obs::json::parse(line).find("id")->str);
  }
  // The cached hits come back first, in admission order; the slow
  // response arrives last even though it was sent first.
  const std::vector<std::string> want{"h0", "h1", "h2", "h3", "slow"};
  EXPECT_EQ(order, want);
}

TEST(NetServer, IdLessResponsesStayInRequestOrder) {
  // Without an id the client has no way to match responses, so the
  // in-order contract holds even when a later request finishes first.
  serve::Service::Options sopts;
  sopts.jobs = 2;
  LoopbackServer s({}, sopts);
  Client cl(s.server.port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all(request_line("w", "MG", 8)));
  ASSERT_FALSE(cl.recv_line().empty());

  std::string batch = slow_line(/*id=*/"", 64);
  for (int i = 0; i < 3; ++i) {
    batch += request_line("", "MG", 8);  // cached: completes instantly
  }
  ASSERT_TRUE(cl.send_all(batch));

  std::vector<std::string> backends;
  for (int i = 0; i < 4; ++i) {
    const std::string line = cl.recv_line();
    ASSERT_FALSE(line.empty());
    backends.push_back(obs::json::parse(line).find("backend")->str);
  }
  const std::vector<std::string> want{"interval", "analytic", "analytic",
                                      "analytic"};
  EXPECT_EQ(backends, want)
      << "id-less responses must be delivered in request order";
}

TEST(NetServer, SigtermDrainAnswersInFlightComputes) {
  serve::install_shutdown_handlers();
  serve::reset_shutdown();
  {
    serve::Service::Options sopts;
    sopts.jobs = 2;
    LoopbackServer s({}, sopts);
    Client cl(s.server.port());
    ASSERT_TRUE(cl.connected());
    std::string batch;
    for (int i = 0; i < 4; ++i) {
      batch += slow_line("f" + std::to_string(i), 32 + i);
    }
    ASSERT_TRUE(cl.send_all(batch));
    // Pull the plug once all four computes are dispatched to the pool —
    // most of them are still in flight when the drain starts.
    ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
      return st.dispatched >= 4;
    }));
    std::raise(SIGTERM);
    s.loop.join();

    const std::string all = cl.recv_until_eof();
    std::vector<bool> seen(4, false);
    std::istringstream lines(all);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string id = obs::json::parse(line).find("id")->str;
      ASSERT_EQ(id.size(), 2u);
      seen[static_cast<std::size_t>(id[1] - '0')] = true;
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(i)])
          << "drain dropped in-flight request f" << i;
    }
  }
  serve::reset_shutdown();
}

// --- shards ---------------------------------------------------------------

TEST(NetServer, ShardFairnessAcrossTwoShards) {
  net::ServerOptions nopts;
  nopts.shards = 2;
  LoopbackServer s(nopts);

  // Four connections held open together: round-robin dealing must give
  // each shard exactly two, and both shards must answer requests.
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(std::make_unique<Client>(s.server.port()));
    ASSERT_TRUE(clients.back()->connected());
    const std::string id = "c" + std::to_string(c);
    ASSERT_TRUE(clients.back()->send_all(request_line(id, "CG", 8 + c)));
    const obs::json::Value v = obs::json::parse(clients.back()->recv_line());
    EXPECT_EQ(v.find("id")->str, id);
  }

  const net::ServerStats stats = s.server.stats();
  ASSERT_EQ(stats.shard_connections.size(), 2u);
  ASSERT_EQ(stats.shard_answered.size(), 2u);
  EXPECT_EQ(stats.shard_connections[0], 2u);
  EXPECT_EQ(stats.shard_connections[1], 2u);
  EXPECT_GT(stats.shard_answered[0], 0u);
  EXPECT_GT(stats.shard_answered[1], 0u);
  EXPECT_EQ(stats.shard_answered[0] + stats.shard_answered[1], 4u);
}

}  // namespace
