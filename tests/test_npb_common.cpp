// Tests for the NPB random-number infrastructure — verified against an
// independent exact 128-bit integer implementation of x' = a*x mod 2^46.

#include <gtest/gtest.h>

#include <cmath>

#include "npb/npb_common.hpp"

namespace rvhpc::npb {
namespace {

/// Reference implementation with exact integer arithmetic.
class ExactLcg {
 public:
  explicit ExactLcg(std::uint64_t seed) : x_(seed) {}
  double next() {
    x_ = (static_cast<unsigned __int128>(x_) * 1220703125ull) &
         ((1ull << 46) - 1);
    return static_cast<double>(x_) / static_cast<double>(1ull << 46);
  }
  [[nodiscard]] std::uint64_t state() const { return x_; }

 private:
  std::uint64_t x_;
};

TEST(NpbRandom, MatchesExactIntegerArithmetic) {
  NpbRandom rng;  // seed 314159265
  ExactLcg exact(314159265ull);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_DOUBLE_EQ(rng.next(), exact.next()) << "step " << i;
  }
}

TEST(NpbRandom, StateIsExactlyRepresentable) {
  NpbRandom rng;
  for (int i = 0; i < 1000; ++i) rng.next();
  ExactLcg exact(314159265ull);
  for (int i = 0; i < 1000; ++i) exact.next();
  EXPECT_EQ(static_cast<std::uint64_t>(rng.state()), exact.state());
}

TEST(NpbRandom, DeviatesInOpenUnitInterval) {
  NpbRandom rng;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(NpbRandom, SkipMatchesSequentialAdvance) {
  for (std::uint64_t n : {1ull, 2ull, 7ull, 100ull, 12345ull, 65536ull}) {
    NpbRandom jumped;
    jumped.skip(n);
    NpbRandom walked;
    for (std::uint64_t i = 0; i < n; ++i) walked.next();
    EXPECT_DOUBLE_EQ(jumped.state(), walked.state()) << "n=" << n;
  }
}

TEST(NpbRandom, SkipZeroIsIdentity) {
  NpbRandom a;
  a.skip(0);
  EXPECT_DOUBLE_EQ(a.state(), NpbRandom::kDefaultSeed);
}

TEST(NpbRandom, SkipComposes) {
  NpbRandom a;
  a.skip(1000);
  a.skip(234);
  NpbRandom b;
  b.skip(1234);
  EXPECT_DOUBLE_EQ(a.state(), b.state());
}

TEST(NpbRandom, PowerIsModularExponentiation) {
  // a^1 = a; a^0 handled via skip(0); a^(m+n) == a^m * a^n mod 2^46.
  EXPECT_DOUBLE_EQ(NpbRandom::power(NpbRandom::kA, 1), NpbRandom::kA);
  double am = NpbRandom::power(NpbRandom::kA, 12);
  const double an = NpbRandom::power(NpbRandom::kA, 30);
  const double amn = NpbRandom::power(NpbRandom::kA, 42);
  randlc(am, an);  // am <- am * an mod 2^46
  EXPECT_DOUBLE_EQ(am, amn);
}

TEST(NpbRandom, RoughlyUniformMean) {
  NpbRandom rng;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(BenchResult, FormatsHumanReadably) {
  BenchResult r;
  r.kernel = Kernel::MG;
  r.problem_class = ProblemClass::A;
  r.threads = 4;
  r.mops = 123.0;
  r.seconds = 1.5;
  r.verified = true;
  r.verification = "ok";
  const std::string s = to_string(r);
  EXPECT_NE(s.find("MG.A"), std::string::npos);
  EXPECT_NE(s.find("VERIFIED"), std::string::npos);
}

}  // namespace
}  // namespace rvhpc::npb
