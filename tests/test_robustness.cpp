// Robustness sweeps: the model must stay finite, positive and sane over a
// large space of randomly generated (but valid) machine descriptions —
// users will feed it custom machine files the registry never anticipated.

#include <gtest/gtest.h>

#include <cmath>

#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "arch/validate.hpp"
#include "memsim/trace.hpp"
#include "model/sweep.hpp"

namespace rvhpc {
namespace {

using arch::MachineModel;
using arch::VectorIsa;
using model::Kernel;
using model::ProblemClass;

/// Deterministic random machine generator built on the memsim XorShift.
class MachineFuzzer {
 public:
  explicit MachineFuzzer(std::uint64_t seed) : rng_(seed) {}

  MachineModel next() {
    MachineModel m;
    m.name = "fuzz-" + std::to_string(counter_++);
    m.part = "Fuzzed CPU";
    m.isa = arch::Isa::Rv64gcv;
    m.cores = pick({1, 2, 4, 8, 16, 32, 64, 128});
    m.cluster_size = std::min(m.cores, pick({1, 2, 4, 8}));
    m.core.clock_ghz = 0.5 + 0.1 * static_cast<double>(rng_.below(40));
    m.core.out_of_order = rng_.below(2) == 0;
    m.core.decode_width = pick({1, 2, 3, 4});
    m.core.issue_width = m.core.decode_width + static_cast<int>(rng_.below(6));
    m.core.fp_units = pick({1, 2, 4});
    m.core.load_store_units = pick({1, 2, 3});
    m.core.sustained_scalar_opc =
        0.3 + 0.1 * static_cast<double>(rng_.below(
                        static_cast<std::uint64_t>(m.core.issue_width * 7)));
    m.core.sustained_scalar_opc =
        std::min(m.core.sustained_scalar_opc,
                 static_cast<double>(m.core.issue_width));
    m.core.miss_level_parallelism = 1 + static_cast<int>(rng_.below(24));
    m.core.complex_loop_efficiency = 0.5 + 0.05 * static_cast<double>(rng_.below(10));
    const VectorIsa isas[] = {VectorIsa::None, VectorIsa::RvvV1_0,
                              VectorIsa::Avx2, VectorIsa::Neon};
    m.core.vector.isa = isas[rng_.below(4)];
    if (m.core.vector.isa != VectorIsa::None) {
      m.core.vector.width_bits = 64 * static_cast<int>(1 + rng_.below(8));
      m.core.vector.pipes = pick({1, 2});
      m.core.vector.gather_efficiency =
          0.05 + 0.05 * static_cast<double>(rng_.below(19));
    }
    const std::size_t l1 = 16 * 1024 << rng_.below(3);
    const std::size_t l2 = 256 * 1024 << rng_.below(4);
    m.caches = {{"L1D", l1, 8, 64, 1, 4},
                {"L2", std::max(l2, l1), 16, 64, m.cluster_size,
                 10.0 + static_cast<double>(rng_.below(10))}};
    m.memory.controllers = pick({1, 2, 4, 8, 16, 32});
    m.memory.channels = m.memory.controllers * static_cast<int>(1 + rng_.below(2));
    m.memory.channel_bw_gbs = 5.0 + static_cast<double>(rng_.below(30));
    m.memory.stream_efficiency = 0.1 + 0.05 * static_cast<double>(rng_.below(18));
    m.memory.per_core_bw_gbs = std::min(
        0.2 + 0.5 * static_cast<double>(rng_.below(40)),
        m.memory.chip_stream_bw_gbs());
    m.memory.idle_latency_ns = 50.0 + static_cast<double>(rng_.below(300));
    m.memory.controller_queue_depth = 2 + static_cast<int>(rng_.below(46));
    m.memory.numa_regions = std::min(m.cores, pick({1, 1, 1, 2, 4}));
    m.memory.dram_gib = 1 << rng_.below(9);  // 1..256 GiB
    return m;
  }

 private:
  memsim::XorShift rng_;
  int counter_ = 0;

  int pick(std::initializer_list<int> options) {
    return *(options.begin() + rng_.below(options.size()));
  }
};

class FuzzedMachines : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedMachines,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_P(FuzzedMachines, GeneratedMachinesValidate) {
  MachineFuzzer fuzz(GetParam());
  for (int i = 0; i < 20; ++i) {
    const MachineModel m = fuzz.next();
    const auto issues = arch::validate(m);
    EXPECT_TRUE(issues.empty()) << m.name << ":\n"
                                << arch::format_issues(issues);
  }
}

TEST_P(FuzzedMachines, PredictionsStayFiniteAndPositive) {
  MachineFuzzer fuzz(GetParam() * 977);
  for (int i = 0; i < 20; ++i) {
    const MachineModel m = fuzz.next();
    for (Kernel k : model::npb_all()) {
      const auto p = model::predict_paper_setup(
          m, model::signature(k, ProblemClass::A), m.cores);
      if (!p.ran) continue;  // tiny DRAM configs may legitimately DNR
      EXPECT_TRUE(std::isfinite(p.mops)) << m.name << " " << to_string(k);
      EXPECT_GT(p.mops, 0.0) << m.name << " " << to_string(k);
      EXPECT_TRUE(std::isfinite(p.achieved_bw_gbs));
    }
  }
}

TEST_P(FuzzedMachines, SpeedupsRemainBounded) {
  MachineFuzzer fuzz(GetParam() * 31337);
  for (int i = 0; i < 10; ++i) {
    const MachineModel m = fuzz.next();
    const auto sig = model::signature(Kernel::MG, ProblemClass::A);
    const auto p1 = model::predict_paper_setup(m, sig, 1);
    const auto pn = model::predict_paper_setup(m, sig, m.cores);
    if (!p1.ran || !pn.ran) continue;
    EXPECT_LE(pn.mops / p1.mops, m.cores * 1.01) << m.name;
    EXPECT_GE(pn.mops / p1.mops, 0.9) << m.name;
  }
}

TEST_P(FuzzedMachines, SerializationRoundTripsFuzzedMachines) {
  MachineFuzzer fuzz(GetParam() * 65521);
  for (int i = 0; i < 20; ++i) {
    const MachineModel m = fuzz.next();
    const MachineModel back = arch::from_text(arch::to_text(m));
    EXPECT_EQ(back.cores, m.cores);
    EXPECT_DOUBLE_EQ(back.core.clock_ghz, m.core.clock_ghz);
    EXPECT_EQ(back.core.vector.isa, m.core.vector.isa);
    EXPECT_DOUBLE_EQ(back.memory.per_core_bw_gbs, m.memory.per_core_bw_gbs);
    EXPECT_TRUE(arch::is_valid(back)) << m.name;
  }
}

}  // namespace
}  // namespace rvhpc
