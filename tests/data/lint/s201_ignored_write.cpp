// Seeded S201 violation: write()/rename() results silently discarded.
// Never compiled.
#include <cstdio>
#include <unistd.h>

namespace fake {

void persist(int fd, const char* buf, unsigned long n) {
  write(fd, buf, n);  // short writes and EINTR vanish here
  std::rename("out.tmp", "out");  // and a failed rename here
}

}  // namespace fake
