// Clean twin of s201_ignored_write.cpp: every syscall result is checked
// or deliberately voided with a reason.  Never compiled.
#include <cstdio>
#include <unistd.h>

namespace fake {

bool persist(int fd, const char* buf, unsigned long n) {
  const long wrote = write(fd, buf, n);
  if (wrote < 0 || static_cast<unsigned long>(wrote) != n) return false;
  if (std::rename("out.tmp", "out") != 0) return false;
  (void)write(fd, "\n", 1);  // trailing newline is cosmetic; losing it is fine
  return true;
}

}  // namespace fake
