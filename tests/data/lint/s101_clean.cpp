// Clean twin of s101_hot_alloc.cpp: the hot region reuses a caller-owned
// slot; allocation happens only in cold setup.  Never compiled.
#include <memory>

namespace fake {

struct Entry {
  int value = 0;
};

// rvhpc: hot-path begin — per-request lookup, must not allocate
Entry* lookup(Entry& slot, int key) {
  slot.value = key;
  return &slot;
}
// rvhpc: hot-path end

std::unique_ptr<Entry> cold_setup(int key) {
  auto e = std::make_unique<Entry>();
  e->value = key;
  return e;
}

}  // namespace fake
