// Clean twin of s002_flag.cpp: the shared flag is std::atomic, so S002
// has nothing to say.  Never compiled.
#include <atomic>
#include <thread>

namespace fake {

std::atomic<int> g_done{0};

void worker() {
  g_done.store(1, std::memory_order_release);
}

int main_loop() {
  std::thread t(worker);
  int spins = 0;
  while (g_done.load(std::memory_order_acquire) == 0) ++spins;
  t.join();
  return spins;
}

}  // namespace fake
