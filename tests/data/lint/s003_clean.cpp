// Clean twin of s003_lock_order.cpp: both functions take the mutexes in
// the same order (and one uses std::scoped_lock, which orders internally).
// Never compiled.
#include <mutex>

namespace fake {

std::mutex stats_mu;
std::mutex save_mu;
int stats = 0;
int saves = 0;

void record() {
  std::lock_guard a(stats_mu);
  std::lock_guard b(save_mu);  // stats_mu -> save_mu
  ++stats;
}

void persist() {
  std::scoped_lock both(stats_mu, save_mu);  // deadlock-free by contract
  ++saves;
}

}  // namespace fake
