// Seeded S002 violation: a plain int flag written by a worker thread and
// polled by the main loop, no atomics, no locks.  Never compiled.
#include <thread>

namespace fake {

int g_done = 0;  // should be std::atomic<int>

void worker() {
  g_done = 1;  // write from the spawned thread
}

int main_loop() {
  std::thread t(worker);
  int spins = 0;
  while (g_done == 0) ++spins;  // read from the main thread
  t.join();
  return spins;
}

}  // namespace fake
