// Seeded S101 violation: heap allocation inside an annotated hot-path
// region.  Never compiled.
#include <memory>

namespace fake {

struct Entry {
  int value = 0;
};

// rvhpc: hot-path begin — per-request lookup, must not allocate
Entry* lookup(int key) {
  auto scratch = std::make_unique<Entry>();  // allocates every call
  scratch->value = key;
  return new Entry{key};  // and again
}
// rvhpc: hot-path end

Entry* cold_setup(int key) {
  return new Entry{key};  // fine: outside any hot region
}

}  // namespace fake
