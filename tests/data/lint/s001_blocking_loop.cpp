// Seeded S001 violation: a Server:: method doing blocking work on the
// event loop.  Fixture data for test_analysis — never compiled.
#include <string>

namespace fake {

struct Service {
  std::string handle_line(const std::string& line);
  void flush(int& log);
};

struct Server {
  Service service_;
  void run();
};

void Server::run() {
  for (int i = 0; i < 8; ++i) {
    int log = 0;
    std::string line = "req";
    line = service_.handle_line(line);  // blocks the poll() loop
    service_.flush(log);                // and so does this
  }
}

}  // namespace fake
