// Seeded S003 violation: two mutexes taken A-then-B in one function and
// B-then-A in another — a textbook deadlock.  Never compiled.
#include <mutex>

namespace fake {

std::mutex stats_mu;
std::mutex save_mu;
int stats = 0;
int saves = 0;

void record() {
  std::lock_guard a(stats_mu);
  std::lock_guard b(save_mu);  // stats_mu -> save_mu
  ++stats;
}

void persist() {
  std::lock_guard b(save_mu);
  std::lock_guard a(stats_mu);  // save_mu -> stats_mu: inverted
  ++saves;
}

}  // namespace fake
