// Clean twin of s001_blocking_loop.cpp: the Server method only enqueues;
// the blocking work happens in a non-Server worker.  Never compiled.
#include <string>

namespace fake {

struct Queue {
  void push(const std::string& line);
  bool pop(std::string& line);
};

struct Service {
  std::string handle_line(const std::string& line);
};

struct Server {
  Queue queue_;
  void run();
};

void Server::run() {
  for (int i = 0; i < 8; ++i) {
    queue_.push("req");  // hand off; the worker below answers
  }
}

void worker_main(Queue& q, Service& s) {
  std::string line;
  while (q.pop(line)) {
    line = s.handle_line(line);  // blocking is fine off the event loop
  }
}

}  // namespace fake
