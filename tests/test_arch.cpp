// Tests for rvhpc::arch — machine registry and descriptions.

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "arch/validate.hpp"

namespace rvhpc::arch {
namespace {

class EveryMachine : public ::testing::TestWithParam<MachineId> {};

INSTANTIATE_TEST_SUITE_P(Registry, EveryMachine,
                         ::testing::ValuesIn(all_machines()),
                         [](const auto& pinfo) {
                           std::string n = name_of(pinfo.param);
                           for (char& c : n) if (c == '-') c = '_';
                           return n;
                         });

TEST_P(EveryMachine, ValidatesCleanly) {
  const MachineModel& m = machine(GetParam());
  const auto issues = validate(m);
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
}

TEST_P(EveryMachine, LookupByNameRoundTrips) {
  const MachineModel& m = machine(GetParam());
  EXPECT_EQ(&machine(m.name), &m);
}

TEST_P(EveryMachine, HasPositiveDerivedQuantities) {
  const MachineModel& m = machine(GetParam());
  EXPECT_GT(m.peak_vector_gflops(), 0.0);
  EXPECT_GT(m.peak_scalar_gflops_core(), 0.0);
  EXPECT_GT(m.llc_bytes(), 0u);
  EXPECT_GT(m.memory.chip_stream_bw_gbs(), 0.0);
  EXPECT_FALSE(m.summary().empty());
}

TEST_P(EveryMachine, SingleCoreOwnsWholeSharedCache) {
  const MachineModel& m = machine(GetParam());
  for (std::size_t level = 0; level < m.caches.size(); ++level) {
    EXPECT_EQ(m.cache_bytes_per_core(level, 1), m.caches[level].size_bytes);
  }
}

TEST(Registry, HasAllElevenPaperMachines) {
  EXPECT_EQ(all_machines().size(), 11u);
  EXPECT_EQ(riscv_board_machines().size(), 6u);
  EXPECT_EQ(hpc_machines().size(), 5u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)machine("no-such-cpu"), std::out_of_range);
}

// --- paper §2.1/§5 facts encoded in the models --------------------------

TEST(Sg2044, MatchesPaperDescription) {
  const MachineModel& m = machine(MachineId::Sg2044);
  EXPECT_EQ(m.cores, 64);
  EXPECT_EQ(m.cluster_size, 4);
  EXPECT_DOUBLE_EQ(m.core.clock_ghz, 2.6);  // test system, not [11]'s 2.8
  EXPECT_EQ(m.core.vector.isa, VectorIsa::RvvV1_0);
  EXPECT_EQ(m.core.vector.width_bits, 128);
  EXPECT_EQ(m.memory.controllers, 32);
  EXPECT_EQ(m.memory.channels, 32);
  EXPECT_EQ(m.memory.numa_regions, 1);
  EXPECT_EQ(m.memory.ddr_kind, "DDR5-4266");
  // 64 KiB L1D, 2 MiB L2 per 4-core cluster, 64 MiB L3.
  EXPECT_EQ(m.caches.at(0).size_bytes, 64u * 1024u);
  EXPECT_EQ(m.caches.at(1).size_bytes, 2u * 1024u * 1024u);
  EXPECT_EQ(m.caches.at(1).shared_by_cores, 4);
  EXPECT_EQ(m.caches.at(2).size_bytes, 64u * 1024u * 1024u);
}

TEST(Sg2042, MatchesPaperDescription) {
  const MachineModel& m = machine(MachineId::Sg2042);
  EXPECT_EQ(m.cores, 64);
  EXPECT_DOUBLE_EQ(m.core.clock_ghz, 2.0);
  EXPECT_EQ(m.core.vector.isa, VectorIsa::RvvV0_7);
  EXPECT_EQ(m.memory.controllers, 4);
  EXPECT_EQ(m.memory.channels, 4);
  // Half the SG2044's per-cluster L2.
  EXPECT_EQ(m.caches.at(1).size_bytes, 1u * 1024u * 1024u);
}

TEST(Sg2044VsSg2042, UpgradesThePaperCallsOut) {
  const MachineModel& v2 = machine(MachineId::Sg2044);
  const MachineModel& v1 = machine(MachineId::Sg2042);
  // ~3x sustained memory bandwidth ([10], Fig. 1).
  const double ratio =
      v2.memory.chip_stream_bw_gbs() / v1.memory.chip_stream_bw_gbs();
  EXPECT_GT(ratio, 2.8);
  EXPECT_LT(ratio, 3.8);
  // 8x the memory controllers/channels, higher clock, doubled L2.
  EXPECT_EQ(v2.memory.controllers, 8 * v1.memory.controllers);
  EXPECT_GT(v2.core.clock_ghz, v1.core.clock_ghz);
  EXPECT_EQ(v2.caches.at(1).size_bytes, 2 * v1.caches.at(1).size_bytes);
}

TEST(OtherIsas, MatchPaperTable5) {
  EXPECT_EQ(machine(MachineId::Epyc7742).cores, 64);
  EXPECT_EQ(machine(MachineId::Epyc7742).memory.numa_regions, 4);
  EXPECT_EQ(machine(MachineId::Epyc7742).core.vector.isa, VectorIsa::Avx2);
  EXPECT_EQ(machine(MachineId::Xeon8170).cores, 26);
  EXPECT_EQ(machine(MachineId::Xeon8170).core.vector.isa, VectorIsa::Avx512);
  EXPECT_EQ(machine(MachineId::ThunderX2).cores, 32);
  EXPECT_EQ(machine(MachineId::ThunderX2).core.vector.isa, VectorIsa::Neon);
  EXPECT_DOUBLE_EQ(machine(MachineId::ThunderX2).core.clock_ghz, 2.0);
}

TEST(Boards, AllwinnerD1HasOneGiB) {
  // Table 2's FT "DNR" hinges on this.
  EXPECT_DOUBLE_EQ(machine(MachineId::AllwinnerD1).memory.dram_gib, 1.0);
}

TEST(Boards, SpacemiTAreTheOnlyOtherRvv10Parts) {
  int rvv10 = 0;
  for (MachineId id : riscv_board_machines()) {
    if (machine(id).core.vector.isa == VectorIsa::RvvV1_0) ++rvv10;
  }
  EXPECT_EQ(rvv10, 2);  // BPI-F3 and Milk-V Jupiter
  EXPECT_GT(machine(MachineId::MilkVJupiter).core.clock_ghz,
            machine(MachineId::BananaPiF3).core.clock_ghz);
}

TEST(VectorUnit, LaneAccounting) {
  VectorUnit v{VectorIsa::Avx512, 512, 2, 0.5};
  EXPECT_EQ(v.lanes_f64(), 8);
  EXPECT_TRUE(v.usable());
  EXPECT_FALSE(VectorUnit{}.usable());
  EXPECT_EQ(VectorUnit{}.lanes_f64(), 0);
}

TEST(ToString, CoversAllEnumerators) {
  for (VectorIsa v : {VectorIsa::None, VectorIsa::RvvV0_7, VectorIsa::RvvV1_0,
                      VectorIsa::Avx2, VectorIsa::Avx512, VectorIsa::Neon}) {
    EXPECT_NE(to_string(v), "unknown");
  }
  for (Isa i : {Isa::Rv64gcv, Isa::Rv64gc, Isa::X86_64, Isa::Armv8}) {
    EXPECT_NE(to_string(i), "unknown");
  }
}

}  // namespace
}  // namespace rvhpc::arch
