// rvhpc::engine — batch evaluator, memo cache, thread pool, value types.
//
// The load-bearing guarantee is determinism: a RequestSet evaluated with 1,
// 2 or 8 workers must produce bit-identical predictions in request order.
// Everything else (memoisation, counters, the --jobs flag) layers on top.

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "engine/batch.hpp"
#include "engine/cache.hpp"
#include "engine/request.hpp"
#include "engine/thread_pool.hpp"
#include "model/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rvhpc;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Bit-exact equality over every Prediction field.
void expect_identical(const model::Prediction& a, const model::Prediction& b) {
  EXPECT_EQ(a.ran, b.ran);
  EXPECT_EQ(a.dnr_reason, b.dnr_reason);
  EXPECT_EQ(bits(a.seconds), bits(b.seconds));
  EXPECT_EQ(bits(a.mops), bits(b.mops));
  EXPECT_EQ(bits(a.achieved_bw_gbs), bits(b.achieved_bw_gbs));
  EXPECT_EQ(a.vector.vectorised, b.vector.vectorised);
  EXPECT_EQ(bits(a.vector.unit_stride_speedup), bits(b.vector.unit_stride_speedup));
  EXPECT_EQ(bits(a.vector.gather_speedup), bits(b.vector.gather_speedup));
  EXPECT_EQ(bits(a.vector.blended_speedup), bits(b.vector.blended_speedup));
  EXPECT_EQ(bits(a.breakdown.compute_s), bits(b.breakdown.compute_s));
  EXPECT_EQ(bits(a.breakdown.stream_s), bits(b.breakdown.stream_s));
  EXPECT_EQ(bits(a.breakdown.latency_s), bits(b.breakdown.latency_s));
  EXPECT_EQ(bits(a.breakdown.sync_s), bits(b.breakdown.sync_s));
  EXPECT_EQ(bits(a.breakdown.imbalance), bits(b.breakdown.imbalance));
  EXPECT_EQ(a.breakdown.dominant, b.breakdown.dominant);
}

/// A medium-sized mixed sweep: every HPC machine's MG and CG scaling
/// curves plus a few single points — enough requests to keep several
/// workers busy and to contain duplicates for the cache tests.
engine::RequestSet mixed_set() {
  engine::RequestSet set;
  for (arch::MachineId id : arch::hpc_machines()) {
    const arch::MachineModel& m = arch::machine(id);
    for (model::Kernel k : {model::Kernel::MG, model::Kernel::CG}) {
      set.add_scaling(m, k, model::ProblemClass::C,
                      model::paper_run_config(m, k, 1),
                      std::string(arch::name_of(id)));
    }
  }
  set.add_paper_setup(arch::MachineId::Sg2044, model::Kernel::FT,
                      model::ProblemClass::C, 64, "ft64");
  return set;
}

engine::BatchEvaluator make(int jobs, std::size_t cache_capacity) {
  engine::BatchEvaluator::Options opts;
  opts.jobs = jobs;
  opts.cache_capacity = cache_capacity;
  return engine::BatchEvaluator(opts);
}

TEST(MachineFingerprint, DistinctAcrossRegistryAndUnderPerturbation) {
  std::vector<std::uint64_t> seen;
  for (arch::MachineId id : arch::all_machines()) {
    seen.push_back(engine::machine_fingerprint(arch::machine(id)));
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]) << "machines " << i << " and " << j;
    }
  }
  // A 5% knob tweak — what the sensitivity sweep does — must re-key.
  arch::MachineModel m = arch::machine(arch::MachineId::Sg2044);
  const std::uint64_t base = engine::machine_fingerprint(m);
  m.memory.channel_bw_gbs *= 1.05;
  EXPECT_NE(engine::machine_fingerprint(m), base);
}

TEST(PredictionRequest, KeyCoversCoresAndCompiler) {
  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2044);
  const auto sig = model::signature(model::Kernel::MG, model::ProblemClass::C);
  model::RunConfig cfg = model::paper_run_config(m, model::Kernel::MG, 8);
  const engine::PredictionRequest a(m, sig, cfg);
  const engine::PredictionRequest same(m, sig, cfg);
  EXPECT_EQ(a.key(), same.key());

  model::RunConfig more_cores = cfg;
  more_cores.cores = 16;
  EXPECT_NE(engine::PredictionRequest(m, sig, more_cores).key(), a.key());

  model::RunConfig scalar = cfg;
  scalar.compiler.vectorise = !scalar.compiler.vectorise;
  EXPECT_NE(engine::PredictionRequest(m, sig, scalar).key(), a.key());

  // Every remaining RunConfig field feeds the key too (request.cpp's
  // static_asserts pin the field counts; this pins the semantics).
  model::RunConfig other_compiler = cfg;
  other_compiler.compiler.id = cfg.compiler.id == model::CompilerId::Gcc15_2
                                   ? model::CompilerId::Gcc12_3_1
                                   : model::CompilerId::Gcc15_2;
  EXPECT_NE(engine::PredictionRequest(m, sig, other_compiler).key(), a.key());

  model::RunConfig placed = cfg;
  placed.placement = model::ThreadPlacement::Spread;
  EXPECT_NE(engine::PredictionRequest(m, sig, placed).key(), a.key());

  // The backend is part of the key: an analytic result may never answer
  // an interval request from the cache.
  const engine::PredictionRequest interval(m, sig, cfg, "",
                                           engine::Backend::Interval);
  EXPECT_NE(interval.key(), a.key());
  EXPECT_EQ(interval.key(),
            engine::PredictionRequest(m, sig, cfg, "other-tag",
                                      engine::Backend::Interval)
                .key());  // the tag is a display label, not an input
}

TEST(RequestSet, ScalingHelperTagsAndOrder) {
  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2044);
  engine::RequestSet set;
  set.add_scaling(m, model::Kernel::MG, model::ProblemClass::C,
                  model::paper_run_config(m, model::Kernel::MG, 1), "sg2044");
  const auto grid = model::power_of_two_cores(m.cores);
  ASSERT_EQ(set.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(set.requests()[i].config().cores, grid[i]);
    EXPECT_EQ(set.requests()[i].tag(),
              "sg2044@" + std::to_string(grid[i]));
  }
}

TEST(BatchEvaluator, DeterministicAcrossPoolSizes) {
  const engine::RequestSet set = mixed_set();
  auto serial = make(1, 0);
  const auto base = serial.evaluate(set);
  ASSERT_EQ(base.size(), set.size());
  for (int jobs : {2, 8}) {
    auto pooled = make(jobs, 0);
    const auto out = pooled.evaluate(set);
    ASSERT_EQ(out.size(), base.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].index, i);
      EXPECT_EQ(out[i].tag, base[i].tag);
      expect_identical(out[i].prediction, base[i].prediction);
    }
  }
}

TEST(BatchEvaluator, SecondPassServedFromCache) {
  const engine::RequestSet set = mixed_set();
  auto ev = make(2, engine::PredictionCache::kDefaultCapacity);
  const auto first = ev.evaluate(set);
  EXPECT_EQ(ev.cache().hits(), 0u);
  EXPECT_EQ(ev.cache().misses(), set.size());
  const auto second = ev.evaluate(set);
  EXPECT_EQ(ev.cache().hits(), set.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache) << "request " << i;
    expect_identical(second[i].prediction, first[i].prediction);
  }
}

TEST(BatchEvaluator, CacheCountersPublishedThroughObsMetrics) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  auto& hits =
      obs::Registry::global().counter("rvhpc_engine_cache_hits_total");
  auto& misses =
      obs::Registry::global().counter("rvhpc_engine_cache_misses_total");
  const auto h0 = hits.value();
  const auto m0 = misses.value();

  const engine::RequestSet set = mixed_set();
  auto ev = make(1, engine::PredictionCache::kDefaultCapacity);
  (void)ev.evaluate(set);
  (void)ev.evaluate(set);
  obs::set_metrics_enabled(false);

  EXPECT_EQ(misses.value() - m0, set.size());
  EXPECT_EQ(hits.value() - h0, set.size());
}

TEST(BatchEvaluator, BackendRequestCountersPublishedThroughObsMetrics) {
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  auto& analytic = obs::Registry::global().counter(
      "rvhpc_engine_backend_requests_total{backend=\"analytic\"}");
  auto& interval = obs::Registry::global().counter(
      "rvhpc_engine_backend_requests_total{backend=\"interval\"}");
  const auto a0 = analytic.value();
  const auto i0 = interval.value();

  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2044);
  const auto sig = model::signature(model::Kernel::MG, model::ProblemClass::C);
  const auto cfg = model::paper_run_config(m, model::Kernel::MG, 8);
  auto ev = make(1, 0);  // cache off: every call reaches the backend
  (void)ev.evaluate_one(m, sig, cfg);
  (void)ev.evaluate_one(m, sig, cfg, engine::Backend::Interval);
  (void)ev.evaluate_one(m, sig, cfg, engine::Backend::Interval);
  obs::set_metrics_enabled(false);

  EXPECT_EQ(analytic.value() - a0, 1u);
  EXPECT_EQ(interval.value() - i0, 2u);
}

TEST(BatchEvaluator, ActiveTraceSessionBypassesCache) {
  // A cache hit would skip predict() and its PredictionRecord, so batches
  // evaluated under a live session must never touch the cache.
  const engine::RequestSet set = mixed_set();
  auto ev = make(2, engine::PredictionCache::kDefaultCapacity);
  obs::SessionScope scope;
  (void)ev.evaluate(set);
  const auto second = ev.evaluate(set);
  EXPECT_EQ(ev.cache().hits(), 0u);
  EXPECT_EQ(ev.cache().misses(), 0u);
  for (const auto& r : second) EXPECT_FALSE(r.from_cache);
  EXPECT_GE(scope.session().event_count(), 2 * set.size());
}

TEST(PredictionCache, LruEvictionOrder) {
  engine::PredictionCache cache(2);
  model::Prediction p;
  p.mops = 1.0;
  cache.put(1, p);
  cache.put(2, p);
  ASSERT_TRUE(cache.get(1).has_value());  // 1 becomes most-recent
  cache.put(3, p);                        // evicts 2, the LRU entry
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PredictionCache, ZeroCapacityDisables) {
  engine::PredictionCache cache(0);
  model::Prediction p;
  cache.put(7, p);
  EXPECT_FALSE(cache.get(7).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(PredictionCache, EntriesSnapshotsMruFirst) {
  engine::PredictionCache cache(8);
  model::Prediction p;
  p.seconds = 1.0;
  cache.put(1, p);
  p.seconds = 2.0;
  cache.put(2, p);
  p.seconds = 3.0;
  cache.put(3, p);
  (void)cache.get(1);  // touch 1 -> order is now 1, 3, 2 (MRU first)

  const std::vector<engine::CacheEntry> snap = cache.entries();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].key, 1u);
  EXPECT_EQ(snap[1].key, 3u);
  EXPECT_EQ(snap[2].key, 2u);
  EXPECT_EQ(bits(snap[0].prediction.seconds), bits(1.0));
  EXPECT_EQ(bits(snap[2].prediction.seconds), bits(2.0));
}

TEST(PredictionCache, EntriesReplayedInReverseReproducesRecency) {
  engine::PredictionCache cache(4);
  model::Prediction p;
  for (std::uint64_t k = 1; k <= 4; ++k) cache.put(k, p);
  (void)cache.get(2);  // order: 2, 4, 3, 1

  // Replay LRU-first (reversed snapshot) into a fresh cache — the
  // persistence layer's load path — and the recency order must survive:
  // the same eviction happens in both caches on overflow.
  engine::PredictionCache replayed(4);
  const std::vector<engine::CacheEntry> snap = cache.entries();
  for (auto it = snap.rbegin(); it != snap.rend(); ++it) {
    replayed.put(it->key, it->prediction);
  }
  replayed.put(99, p);  // evicts the LRU entry: key 1
  EXPECT_FALSE(replayed.get(1).has_value());
  EXPECT_TRUE(replayed.get(2).has_value());
  EXPECT_TRUE(replayed.get(3).has_value());
  EXPECT_TRUE(replayed.get(4).has_value());
}

TEST(ThreadPool, RethrowsFirstTaskExceptionFromWait) {
  engine::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool must stay usable after an error batch.
  int done = 0;
  pool.submit([&] { done = 1; });
  pool.wait();
  EXPECT_EQ(done, 1);
}

TEST(ThreadPool, SubmitFutureDeliversValueAndOwnsItsException) {
  engine::ThreadPool pool(2);
  std::future<int> ok = pool.submit_future([] { return 41 + 1; });
  EXPECT_EQ(ok.get(), 42);

  // The future owns the task's exception; wait()'s fire-and-forget error
  // channel must stay clean so batch callers never see serving errors.
  std::future<int> bad =
      pool.submit_future([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait());
}

TEST(ApplyJobsFlag, ParsesValidAndRejectsMalformed) {
  const char* good[] = {"prog", "--table=3", "--jobs=3"};
  EXPECT_EQ(engine::apply_jobs_flag(3, const_cast<char**>(good)), 3);
  EXPECT_EQ(engine::default_evaluator().jobs(), 3);

  const char* absent[] = {"prog", "--verbose"};
  EXPECT_EQ(engine::apply_jobs_flag(2, const_cast<char**>(absent)), 0);

  // --jobs=0 means "every hardware thread" on every binary (the cli::
  // wrapper shares these semantics).
  const unsigned hw = std::thread::hardware_concurrency();
  const int want_hw = hw > 0 ? static_cast<int>(hw) : 1;
  const char* zero[] = {"prog", "--jobs=0"};
  EXPECT_EQ(engine::apply_jobs_flag(2, const_cast<char**>(zero)), want_hw);
  EXPECT_EQ(engine::default_evaluator().jobs(), want_hw);

  const char* junk[] = {"prog", "--jobs=abc"};
  EXPECT_EQ(engine::apply_jobs_flag(2, const_cast<char**>(junk)), 0);

  const char* trailing[] = {"prog", "--jobs=4x"};
  EXPECT_EQ(engine::apply_jobs_flag(2, const_cast<char**>(trailing)), 0);

  engine::set_default_jobs(engine::default_jobs());  // restore for later tests
}

TEST(DefaultEvaluator, EvaluateOneMatchesDirectPredict) {
  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2042);
  const auto sig = model::signature(model::Kernel::CG, model::ProblemClass::C);
  const model::RunConfig cfg = model::paper_run_config(m, model::Kernel::CG, 64);
  expect_identical(engine::default_evaluator().evaluate_one(m, sig, cfg),
                   model::predict(m, sig, cfg));
}

}  // namespace
