// Tests for rvhpc::model workload signatures.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "model/signatures.hpp"

namespace rvhpc::model {
namespace {

struct SigCase {
  Kernel kernel;
  ProblemClass cls;
};

std::vector<SigCase> all_cases() {
  std::vector<SigCase> cases;
  for (Kernel k : npb_all()) {
    for (ProblemClass c : {ProblemClass::S, ProblemClass::W, ProblemClass::A,
                           ProblemClass::B, ProblemClass::C}) {
      cases.push_back({k, c});
    }
  }
  return cases;
}

class EverySignature : public ::testing::TestWithParam<SigCase> {};
INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllClasses, EverySignature, ::testing::ValuesIn(all_cases()),
    [](const auto& pinfo) {
      return to_string(pinfo.param.kernel) + "_" + to_string(pinfo.param.cls);
    });

TEST_P(EverySignature, FieldsInPhysicalRanges) {
  const auto s = signature(GetParam().kernel, GetParam().cls);
  EXPECT_EQ(s.kernel, GetParam().kernel);
  EXPECT_EQ(s.problem_class, GetParam().cls);
  EXPECT_GT(s.total_mop, 0.0);
  EXPECT_GT(s.cycles_per_op, 0.0);
  EXPECT_GE(s.vectorisable_fraction, 0.0);
  EXPECT_LE(s.vectorisable_fraction, 1.0);
  EXPECT_GE(s.gather_fraction, 0.0);
  EXPECT_LE(s.gather_fraction, 1.0);
  EXPECT_GT(s.vector_elem_parallelism, 0.0);
  EXPECT_TRUE(s.element_bits == 32 || s.element_bits == 64);
  EXPECT_GE(s.streamed_bytes_per_op, 0.0);
  EXPECT_GE(s.random_access_per_op, 0.0);
  EXPECT_GE(s.random_llc_hit_fraction, 0.0);
  EXPECT_LE(s.random_llc_hit_fraction, 1.0);
  EXPECT_GE(s.random_overlap, 0.0);
  EXPECT_LE(s.random_overlap, 1.0);
  EXPECT_GT(s.working_set_mib, 0.0);
  EXPECT_GE(s.comm_bytes_per_op, 0.0);
  EXPECT_GE(s.global_syncs, 0.0);
  EXPECT_GE(s.imbalance_coeff, 0.0);
  EXPECT_GE(s.serial_fraction, 0.0);
  EXPECT_LT(s.serial_fraction, 0.1);
  EXPECT_GE(s.read_fraction, 0.0);
  EXPECT_LE(s.read_fraction, 1.0);
  EXPECT_GE(s.rvv_codegen_derate, 0.0);
  EXPECT_LE(s.rvv_codegen_derate, 1.0);
}

TEST_P(EverySignature, Deterministic) {
  const auto a = signature(GetParam().kernel, GetParam().cls);
  const auto b = signature(GetParam().kernel, GetParam().cls);
  EXPECT_EQ(a.total_mop, b.total_mop);
  EXPECT_EQ(a.working_set_mib, b.working_set_mib);
  EXPECT_EQ(a.cycles_per_op, b.cycles_per_op);
}

class EveryKernel : public ::testing::TestWithParam<Kernel> {};
INSTANTIATE_TEST_SUITE_P(AllKernels, EveryKernel,
                         ::testing::ValuesIn(npb_all()),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST_P(EveryKernel, WorkAndFootprintGrowWithClass) {
  double prev_mop = 0.0, prev_ws = 0.0;
  for (ProblemClass c : {ProblemClass::S, ProblemClass::W, ProblemClass::A,
                         ProblemClass::B, ProblemClass::C}) {
    const auto s = signature(GetParam(), c);
    EXPECT_GT(s.total_mop, prev_mop) << to_string(c);
    EXPECT_GE(s.working_set_mib, prev_ws) << to_string(c);
    prev_mop = s.total_mop;
    prev_ws = s.working_set_mib;
  }
}

TEST(SignatureShape, IsIsTheLatencyKernel) {
  const auto s = signature(Kernel::IS, ProblemClass::C);
  EXPECT_GE(s.random_access_per_op, 1.0);
  EXPECT_EQ(s.element_bits, 32);
  EXPECT_FALSE(s.dependent_chain);  // independent histogram updates
}

TEST(SignatureShape, EpIsTheComputeKernel) {
  const auto s = signature(Kernel::EP, ProblemClass::C);
  EXPECT_EQ(s.streamed_bytes_per_op, 0.0);
  EXPECT_EQ(s.random_access_per_op, 0.0);
  EXPECT_GT(s.cycles_per_op, 50.0);
}

TEST(SignatureShape, MgIsTheBandwidthKernel) {
  const auto s = signature(Kernel::MG, ProblemClass::C);
  EXPECT_GT(s.streamed_bytes_per_op, 2.0);
  EXPECT_GT(s.working_set_mib, 1000.0);  // class C: multi-GiB grids
}

TEST(SignatureShape, CgIsTheGatherKernel) {
  const auto s = signature(Kernel::CG, ProblemClass::C);
  EXPECT_GT(s.gather_fraction, 0.8);
  EXPECT_TRUE(s.dependent_chain);
  EXPECT_GT(s.random_access_per_op, 0.0);
}

TEST(SignatureShape, FtCommunicates) {
  EXPECT_GT(signature(Kernel::FT, ProblemClass::C).comm_bytes_per_op, 0.0);
}

TEST(SignatureShape, PseudoAppsAreComplexControl) {
  for (Kernel k : npb_pseudo_apps()) {
    const auto s = signature(k, ProblemClass::C);
    EXPECT_TRUE(s.complex_control) << to_string(k);
    EXPECT_LT(s.rvv_codegen_derate, 1.0) << to_string(k);
  }
  EXPECT_FALSE(signature(Kernel::EP, ProblemClass::C).complex_control);
}

TEST(SignatureShape, LuIsTheSyncHeavyApp) {
  const auto lu = signature(Kernel::LU, ProblemClass::C);
  EXPECT_GT(lu.global_syncs, signature(Kernel::BT, ProblemClass::C).global_syncs);
  EXPECT_GT(lu.serial_fraction,
            signature(Kernel::BT, ProblemClass::C).serial_fraction);
}

TEST(SignatureShape, FtClassBFitsNeitherD1NorItsSmallerSiblings) {
  // The DNR in Table 2: class B FT needs > 1 GiB.
  EXPECT_GT(signature(Kernel::FT, ProblemClass::B).working_set_mib, 1024.0);
}

TEST(KernelLists, SuiteComposition) {
  EXPECT_EQ(npb_kernels().size(), 5u);
  EXPECT_EQ(npb_pseudo_apps().size(), 3u);
  EXPECT_EQ(npb_all().size(), 8u);
}

TEST(StreamSignatures, CopyAndTriad) {
  const auto copy = signature(Kernel::StreamCopy, ProblemClass::C);
  const auto triad = signature(Kernel::StreamTriad, ProblemClass::C);
  EXPECT_GT(triad.streamed_bytes_per_op, copy.streamed_bytes_per_op);
  EXPECT_GT(copy.vectorisable_fraction, 0.9);
  EXPECT_EQ(copy.read_fraction, 0.0);  // the copy baseline itself
}

}  // namespace
}  // namespace rvhpc::model
