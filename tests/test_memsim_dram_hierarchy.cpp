// Tests for rvhpc::memsim DRAM model and multi-core hierarchy.

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "memsim/dram.hpp"
#include "memsim/hierarchy.hpp"

namespace rvhpc::memsim {
namespace {

DramConfig small_dram() {
  DramConfig cfg;
  cfg.channels = 1;
  cfg.channel_bw_gbs = 10.0;
  cfg.efficiency = 1.0;
  cfg.idle_latency_ns = 100.0;
  cfg.clock_ghz = 1.0;
  cfg.window_cycles = 1000;
  return cfg;
}

TEST(Dram, IdleLatencyAtZeroLoad) {
  DramModel d(small_dram());
  EXPECT_DOUBLE_EQ(d.latency_cycles(0.0), 100.0);  // 100 ns at 1 GHz
}

TEST(Dram, LatencyInflatesQuadratically) {
  DramModel d(small_dram());
  EXPECT_GT(d.latency_cycles(0.9), d.latency_cycles(0.3));
  EXPECT_DOUBLE_EQ(d.latency_cycles(2.0), d.latency_cycles(0.95));
}

TEST(Dram, QuietWindowsAreNotBandwidthBound) {
  DramModel d(small_dram());
  // One line per window: far below the ~10 KB window capacity.
  for (std::uint64_t w = 0; w < 50; ++w) d.request(w * 1000);
  d.finish(50 * 1000);
  EXPECT_EQ(d.bw_bound_windows(), 0u);
  EXPECT_GT(d.windows(), 40u);
}

TEST(Dram, SaturatedWindowsAreDetected) {
  DramModel d(small_dram());
  // Window capacity = 10 GB/s * 1us = 10 KB = ~156 lines; issue 400/window.
  for (std::uint64_t w = 0; w < 10; ++w) {
    for (int r = 0; r < 400; ++r) d.request(w * 1000 + static_cast<std::uint64_t>(r));
  }
  d.finish(10 * 1000);
  EXPECT_GT(d.bw_bound_fraction(), 0.9);
  EXPECT_EQ(d.total_requests(), 4000u);
}

TEST(Dram, UtilisationResetsPerWindow) {
  DramModel d(small_dram());
  for (int r = 0; r < 200; ++r) d.request(0);
  EXPECT_GT(d.current_utilisation(), 0.5);
  d.request(5000);  // two windows later
  EXPECT_LT(d.current_utilisation(), 0.1);
}

// --- hierarchy ---------------------------------------------------------------

TEST(Hierarchy, BuildsPerMachineTopology) {
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  Hierarchy h(sg, 8);
  EXPECT_EQ(h.levels(), 3u);  // L1D, L2, L3
  EXPECT_EQ(h.cores(), 8);
  EXPECT_GT(h.level_latency(2), h.level_latency(0));
}

TEST(Hierarchy, RejectsBadCoreCount) {
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  EXPECT_THROW(Hierarchy(sg, 0), std::invalid_argument);
  EXPECT_THROW(Hierarchy(sg, 65), std::invalid_argument);
}

TEST(Hierarchy, MissFillsAllLevels) {
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  Hierarchy h(sg, 1);
  EXPECT_EQ(h.access(0, 0x10000, false), HitLevel::Dram);
  EXPECT_EQ(h.access(0, 0x10000, false), HitLevel::L1);
}

TEST(Hierarchy, ClusterSharingL2) {
  // Cores 0 and 1 share an SG2044 L2 (clusters of 4); a line brought in by
  // core 0 is an L2 hit for core 1 but an L1 miss.
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  Hierarchy h(sg, 8);
  h.access(0, 0x40000, false);
  EXPECT_EQ(h.access(1, 0x40000, false), HitLevel::L2);
  // Core 4 is in the next cluster: different L2, same L3.
  EXPECT_EQ(h.access(4, 0x40000, false), HitLevel::L3);
}

TEST(Hierarchy, PrivateL2OnEpyc) {
  const auto& epyc = arch::machine(arch::MachineId::Epyc7742);
  Hierarchy h(epyc, 8);
  h.access(0, 0x40000, false);
  // EPYC L2 is private; neighbour core hits only in the CCX-shared L3.
  EXPECT_EQ(h.access(1, 0x40000, false), HitLevel::L3);
}

TEST(Hierarchy, CoherentWriteInvalidatesSiblingCopies) {
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  Hierarchy h(sg, 8, /*coherent=*/true);
  // Core 0 and core 4 (different clusters) both read the line.
  h.access(0, 0x9000, false);
  h.access(4, 0x9000, false);
  EXPECT_EQ(h.access(4, 0x9000, false), HitLevel::L1);
  // Core 0 writes: core 4's private copies must be dropped.
  h.access(0, 0x9000, true);
  EXPECT_GT(h.coherence_invalidations(0), 0u);
  // Core 4's next read is a coherence miss down to the chip-shared L3.
  EXPECT_EQ(h.access(4, 0x9000, false), HitLevel::L3);
}

TEST(Hierarchy, NonCoherentModeKeepsStaleCopies) {
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  Hierarchy h(sg, 8, /*coherent=*/false);
  h.access(0, 0x9000, false);
  h.access(4, 0x9000, false);
  h.access(0, 0x9000, true);
  EXPECT_EQ(h.access(4, 0x9000, false), HitLevel::L1);  // stale but resident
  EXPECT_EQ(h.coherence_invalidations(0), 0u);
}

TEST(Hierarchy, CoherentWriteDoesNotDisturbTheWriter) {
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  Hierarchy h(sg, 8, /*coherent=*/true);
  h.access(0, 0x9000, true);
  EXPECT_EQ(h.access(0, 0x9000, false), HitLevel::L1);
}

TEST(Cache, InvalidateDropsLineAndCountsDirtyWriteback) {
  Cache c(4096, 4, 64);
  c.access(0x40, true);
  EXPECT_TRUE(c.invalidate(0x40));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(c.coherence_invalidations(), 1u);
  EXPECT_FALSE(c.invalidate(0x40));  // already gone
}

TEST(Hierarchy, LevelStatsAggregate) {
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  Hierarchy h(sg, 4);
  for (int c = 0; c < 4; ++c) h.access(c, 0x1000, false);
  const CacheStats l1 = h.level_stats(0);
  EXPECT_EQ(l1.accesses, 4u);   // each core's private L1 probed once
  EXPECT_EQ(l1.misses, 4u);
  const CacheStats l2 = h.level_stats(1);
  EXPECT_EQ(l2.misses, 1u);     // shared L2: first core misses, rest hit
  EXPECT_EQ(l2.hits, 3u);
}

}  // namespace
}  // namespace rvhpc::memsim
