// Tests for rvhpc::stream (host STREAM benchmark) and rvhpc::report
// (table / chart rendering).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "report/chart.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "stream/stream.hpp"

namespace rvhpc {
namespace {

TEST(Stream, RunsAndVerifies) {
  stream::StreamConfig cfg;
  cfg.elements = 1 << 20;
  cfg.repetitions = 3;
  cfg.threads = 2;
  const auto results = stream::run(cfg);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.verified) << to_string(r.kernel);
    EXPECT_GT(r.best_gbs, 0.0);
    EXPECT_GE(r.best_gbs, r.avg_gbs * 0.99);
  }
}

TEST(Stream, KernelsInCanonicalOrder) {
  stream::StreamConfig cfg;
  cfg.elements = 1 << 16;
  cfg.repetitions = 2;
  const auto results = stream::run(cfg);
  EXPECT_EQ(results[0].kernel, stream::StreamKernel::Copy);
  EXPECT_EQ(results[1].kernel, stream::StreamKernel::Scale);
  EXPECT_EQ(results[2].kernel, stream::StreamKernel::Add);
  EXPECT_EQ(results[3].kernel, stream::StreamKernel::Triad);
}

TEST(Stream, KernelNames) {
  EXPECT_EQ(to_string(stream::StreamKernel::Copy), "copy");
  EXPECT_EQ(to_string(stream::StreamKernel::Triad), "triad");
}

TEST(Table, RendersAlignedColumns) {
  report::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, ShortRowsPadAndLongRowsTruncate) {
  report::Table t({"a", "b"});
  t.add_row({"only"});
  t.add_row({"x", "y", "dropped"});
  const std::string out = t.render();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  report::Table t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(report::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(report::fmt(2.0, 0), "2");
}

TEST(Fmt, PercentOfReference) {
  EXPECT_EQ(report::fmt_pct_of(50.0, 200.0), "25%");
  EXPECT_EQ(report::fmt_pct_of(1.0, 0.0), "-");
}

TEST(Fmt, Ratio) {
  EXPECT_EQ(report::fmt_ratio(3.0, 2.0), "1.50x");
  EXPECT_EQ(report::fmt_ratio(1.0, 0.0), "-");
}

TEST(Chart, RendersSeriesAndLegend) {
  report::AsciiChart chart("Title", "cores", "Mop/s", 40, 10);
  chart.add_series({"sg2044", '4', {{1, 10}, {2, 19}, {4, 35}, {8, 60}}});
  chart.add_series({"sg2042", '2', {{1, 9}, {2, 17}, {4, 20}, {8, 21}}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find('4'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(Chart, EmptyChartIsJustTheTitle) {
  report::AsciiChart chart("Nothing", "x", "y");
  EXPECT_EQ(chart.render(), "Nothing\n");
}

TEST(Csv, DisabledWithoutEnvVar) {
  ::unsetenv("RVHPC_CSV_DIR");
  report::Table t({"a"});
  EXPECT_EQ(report::csv_dir(), "");
  EXPECT_EQ(report::maybe_write_csv("nope", t), "");
}

TEST(Csv, WritesWhenEnvVarSet) {
  ::setenv("RVHPC_CSV_DIR", "/tmp", 1);
  report::Table t({"k", "v"});
  t.add_row({"x", "1"});
  const std::string path = report::maybe_write_csv("rvhpc_csv_test", t);
  EXPECT_EQ(path, "/tmp/rvhpc_csv_test.csv");
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "k,v");
  ::unsetenv("RVHPC_CSV_DIR");
}

TEST(Csv, UnwritableDirectoryThrows) {
  ::setenv("RVHPC_CSV_DIR", "/nonexistent-dir-xyz", 1);
  report::Table t({"a"});
  EXPECT_THROW((void)report::maybe_write_csv("x", t), std::runtime_error);
  ::unsetenv("RVHPC_CSV_DIR");
}

TEST(Chart, IgnoresNonPositiveX) {
  report::AsciiChart chart("T", "x", "y", 32, 8);
  chart.add_series({"s", '*', {{0, 5}, {-1, 6}}});
  EXPECT_EQ(chart.render(), "T\n");  // nothing plottable on a log axis
}

}  // namespace
}  // namespace rvhpc
