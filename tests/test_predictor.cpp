// Tests for rvhpc::model::predict — behavioural properties of the
// top-level performance model.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "arch/registry.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"

namespace rvhpc::model {
namespace {

using arch::MachineId;

struct Case {
  MachineId machine;
  Kernel kernel;
};

std::vector<Case> sweep_cases() {
  std::vector<Case> cases;
  for (MachineId m : arch::hpc_machines()) {
    for (Kernel k : npb_all()) cases.push_back({m, k});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n =
      arch::name_of(info.param.machine) + "_" + to_string(info.param.kernel);
  for (char& c : n) if (c == '-') c = '_';
  return n;
}

class PredictorSweep : public ::testing::TestWithParam<Case> {};
INSTANTIATE_TEST_SUITE_P(AllMachineKernelPairs, PredictorSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

TEST_P(PredictorSweep, MoreCoresNeverMuchSlower) {
  // Property: throughput is (near-)non-decreasing in core count.  A small
  // regression at full chip is permitted: spanning additional NUMA regions
  // raises effective DRAM latency (EPYC + IS genuinely shows this).
  const auto& m = arch::machine(GetParam().machine);
  const auto sig = signature(GetParam().kernel, ProblemClass::C);
  double prev = 0.0;
  for (int n = 1; n <= m.cores; n *= 2) {
    const auto p = predict_paper_setup(m, sig, n);
    ASSERT_TRUE(p.ran);
    EXPECT_GE(p.mops, prev * 0.90) << n << " cores";
    prev = p.mops;
  }
}

TEST_P(PredictorSweep, TimesArePositiveAndConsistent) {
  const auto& m = arch::machine(GetParam().machine);
  const auto sig = signature(GetParam().kernel, ProblemClass::C);
  const auto p = predict_paper_setup(m, sig, m.cores);
  ASSERT_TRUE(p.ran);
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_NEAR(p.mops * p.seconds, sig.total_mop, sig.total_mop * 1e-9);
  EXPECT_GE(p.breakdown.compute_s, 0.0);
  EXPECT_GE(p.breakdown.stream_s, 0.0);
  EXPECT_GE(p.breakdown.latency_s, 0.0);
  EXPECT_GE(p.breakdown.imbalance, 1.0);
}

TEST_P(PredictorSweep, SpeedupBoundedByCores) {
  const auto& m = arch::machine(GetParam().machine);
  const auto sig = signature(GetParam().kernel, ProblemClass::C);
  const auto p1 = predict_paper_setup(m, sig, 1);
  const auto pn = predict_paper_setup(m, sig, m.cores);
  EXPECT_LE(pn.mops / p1.mops, m.cores * 1.001);
  EXPECT_GE(pn.mops / p1.mops, 1.0);
}

TEST(Predictor, DnrWhenFootprintExceedsDram) {
  // Table 2: FT class B does not run on the 1 GiB Allwinner D1.
  const auto& d1 = arch::machine(MachineId::AllwinnerD1);
  const auto p =
      predict_paper_setup(d1, signature(Kernel::FT, ProblemClass::B), 1);
  EXPECT_FALSE(p.ran);
  EXPECT_NE(p.dnr_reason.find("DRAM"), std::string::npos);
}

TEST(Predictor, DnrWhenCoresExceedMachine) {
  const auto& xeon = arch::machine(MachineId::Xeon8170);
  const auto p =
      predict_paper_setup(xeon, signature(Kernel::EP, ProblemClass::C), 64);
  EXPECT_FALSE(p.ran);
}

TEST(Predictor, EpIsComputeBound) {
  const auto p = predict_paper_setup(arch::machine(MachineId::Sg2044),
                                     signature(Kernel::EP, ProblemClass::C), 64);
  EXPECT_EQ(p.breakdown.dominant, Bottleneck::Compute);
}

TEST(Predictor, MgIsBandwidthBoundAtFullChip) {
  const auto p = predict_paper_setup(arch::machine(MachineId::Sg2042),
                                     signature(Kernel::MG, ProblemClass::C), 64);
  EXPECT_EQ(p.breakdown.dominant, Bottleneck::StreamBandwidth);
}

TEST(Predictor, IsIsLatencyBoundAtFullChip) {
  const auto p = predict_paper_setup(arch::machine(MachineId::Sg2042),
                                     signature(Kernel::IS, ProblemClass::C), 64);
  EXPECT_EQ(p.breakdown.dominant, Bottleneck::Latency);
}

TEST(Predictor, MoreBandwidthHelpsBandwidthBoundKernels) {
  arch::MachineModel m = arch::machine(MachineId::Sg2042);
  const auto sig = signature(Kernel::MG, ProblemClass::C);
  const double base = predict_paper_setup(m, sig, 64).mops;
  m.memory.stream_efficiency = std::min(1.0, m.memory.stream_efficiency * 2.0);
  const double boosted = predict_paper_setup(m, sig, 64).mops;
  EXPECT_GT(boosted, base * 1.3);
}

TEST(Predictor, FasterClockHelpsComputeBoundKernels) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  const auto sig = signature(Kernel::EP, ProblemClass::C);
  const double base = predict_paper_setup(m, sig, 1).mops;
  m.core.clock_ghz *= 1.5;
  const double boosted = predict_paper_setup(m, sig, 1).mops;
  EXPECT_NEAR(boosted / base, 1.5, 0.05);
}

TEST(Predictor, VectorisationIrrelevantWhenBandwidthBound) {
  const auto& m = arch::machine(MachineId::Sg2044);
  const auto sig = signature(Kernel::MG, ProblemClass::C);
  RunConfig vec{64, {CompilerId::Gcc15_2, true}, ThreadPlacement::OsDefault};
  RunConfig novec{64, {CompilerId::Gcc15_2, false}, ThreadPlacement::OsDefault};
  const double rv = predict(m, sig, vec).mops;
  const double rs = predict(m, sig, novec).mops;
  EXPECT_NEAR(rv / rs, 1.0, 0.1);  // Table 8: 32458 vs 31893
}

TEST(Predictor, PaperSetupDisablesCgVectorisationOnSg2044Only) {
  const auto& sg = arch::machine(MachineId::Sg2044);
  const auto sig = signature(Kernel::CG, ProblemClass::C);
  const auto paper = predict_paper_setup(sg, sig, 1);
  RunConfig forced{1, {CompilerId::Gcc15_2, true}, ThreadPlacement::OsDefault};
  const auto vectorised = predict(sg, sig, forced);
  EXPECT_FALSE(paper.vector.vectorised);
  EXPECT_TRUE(vectorised.vector.vectorised);
  EXPECT_GT(paper.mops, vectorised.mops * 1.8);  // the §6 pathology
}

TEST(Predictor, AchievedBandwidthNeverExceedsSupply) {
  for (MachineId id : arch::hpc_machines()) {
    const auto& m = arch::machine(id);
    const auto p = predict_paper_setup(
        m, signature(Kernel::StreamCopy, ProblemClass::C), m.cores);
    EXPECT_LE(p.achieved_bw_gbs,
              m.memory.chip_stream_bw_gbs() * m.memory.read_bw_bonus * 1.05)
        << m.name;
  }
}

class ClassSweep : public ::testing::TestWithParam<ProblemClass> {};
INSTANTIATE_TEST_SUITE_P(AllClasses, ClassSweep,
                         ::testing::Values(ProblemClass::S, ProblemClass::W,
                                           ProblemClass::A, ProblemClass::B,
                                           ProblemClass::C),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST_P(ClassSweep, EveryKernelRunsOnTheSg2044) {
  const auto& m = arch::machine(MachineId::Sg2044);
  for (Kernel k : npb_all()) {
    const auto p = predict_paper_setup(m, signature(k, GetParam()), 64);
    ASSERT_TRUE(p.ran) << to_string(k);
    EXPECT_GT(p.mops, 0.0) << to_string(k);
  }
}

TEST_P(ClassSweep, BiggerClassesTakeLonger) {
  const auto& m = arch::machine(MachineId::Sg2044);
  for (Kernel k : npb_all()) {
    const auto small = predict_paper_setup(m, signature(k, ProblemClass::S), 64);
    const auto at = predict_paper_setup(m, signature(k, GetParam()), 64);
    EXPECT_GE(at.seconds, small.seconds * 0.999) << to_string(k);
  }
}

TEST(Predictor, SerialFractionCapsSpeedup) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  auto sig = signature(Kernel::EP, ProblemClass::C);
  sig.serial_fraction = 0.05;  // Amdahl: max speedup ~17.3 at 64 cores
  const double s = predict_paper_setup(m, sig, 64).mops /
                   predict_paper_setup(m, sig, 1).mops;
  EXPECT_LT(s, 18.0);
  EXPECT_GT(s, 10.0);
}

}  // namespace
}  // namespace rvhpc::model
