// Integration tests: the model must reproduce the *shape* of every paper
// result — who wins, by roughly what factor, and where scaling saturates.
// Tolerance bands are deliberately generous (the substrate is a model, not
// the authors' silicon); exact numbers live in EXPERIMENTS.md.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "model/paper_reference.hpp"
#include "model/sweep.hpp"

namespace rvhpc::model {
namespace {

using arch::MachineId;

double mops(MachineId m, Kernel k, ProblemClass c, int cores) {
  return at_cores(m, k, c, cores).mops;
}

// ---- Table 2: single-core RISC-V landscape --------------------------------

TEST(Table2, Sg2044WinsEveryKernel) {
  for (Kernel k : npb_kernels()) {
    const double sg = mops(MachineId::Sg2044, k, ProblemClass::B, 1);
    for (MachineId board : arch::riscv_board_machines()) {
      const auto p = at_cores(board, k, ProblemClass::B, 1);
      if (!p.ran) continue;  // FT on the D1
      EXPECT_GT(sg, 1.8 * p.mops)
          << to_string(k) << " on " << arch::name_of(board);
    }
  }
}

TEST(Table2, AbsoluteValuesWithinBand) {
  int checked = 0;
  for (const auto& row : paper::table2()) {
    if (!row.mops) continue;
    const auto p = at_cores(row.machine, row.kernel, ProblemClass::B, 1);
    ASSERT_TRUE(p.ran) << to_string(row.kernel) << arch::name_of(row.machine);
    EXPECT_NEAR(p.mops / *row.mops, 1.0, 0.45)
        << to_string(row.kernel) << " on " << arch::name_of(row.machine);
    ++checked;
  }
  EXPECT_EQ(checked, 34);
}

TEST(Table2, FtDoesNotRunOnTheD1) {
  EXPECT_FALSE(
      at_cores(MachineId::AllwinnerD1, Kernel::FT, ProblemClass::B, 1).ran);
}

TEST(Table2, JupiterEdgesOutBananaPi) {
  // "The Milk-V Jupiter marginally outperforms the Banana Pi for all
  // benchmarks" — the M1 is a faster-clocked K1.
  for (Kernel k : npb_kernels()) {
    const auto j = at_cores(MachineId::MilkVJupiter, k, ProblemClass::B, 1);
    const auto b = at_cores(MachineId::BananaPiF3, k, ProblemClass::B, 1);
    if (!j.ran || !b.ran) continue;
    EXPECT_GT(j.mops, b.mops) << to_string(k);
    EXPECT_LT(j.mops, b.mops * 1.35) << to_string(k);  // marginal, not huge
  }
}

// ---- Tables 3/4: SG2044 vs SG2042 -----------------------------------------

TEST(Table3, SingleCoreEdgeIsModest) {
  // Paper: 1.08x (IS) to 1.30x (EP), EP the largest.
  double ep_ratio = 0.0;
  for (const auto& row : paper::table3_single_core()) {
    const double r = mops(MachineId::Sg2044, row.kernel, ProblemClass::C, 1) /
                     mops(MachineId::Sg2042, row.kernel, ProblemClass::C, 1);
    EXPECT_GT(r, 1.0) << to_string(row.kernel);
    EXPECT_LT(r, 1.55) << to_string(row.kernel);
    if (row.kernel == Kernel::EP) ep_ratio = r;
  }
  EXPECT_NEAR(ep_ratio, 1.30, 0.15);
}

TEST(Table4, SixtyFourCoreEdgeIsLarge) {
  // Paper: 1.52x (EP) to 4.91x (IS).
  double worst = 1e9, best = 0.0;
  Kernel worst_k = Kernel::EP, best_k = Kernel::EP;
  for (const auto& row : paper::table4_64_cores()) {
    const double r = mops(MachineId::Sg2044, row.kernel, ProblemClass::C, 64) /
                     mops(MachineId::Sg2042, row.kernel, ProblemClass::C, 64);
    const double paper_r = row.sg2044_mops / row.sg2042_mops;
    EXPECT_NEAR(r / paper_r, 1.0, 0.40) << to_string(row.kernel);
    if (r < worst) { worst = r; worst_k = row.kernel; }
    if (r > best) { best = r; best_k = row.kernel; }
  }
  // The ordering flip vs Table 3: EP benefits least, IS most.
  EXPECT_EQ(worst_k, Kernel::EP);
  EXPECT_EQ(best_k, Kernel::IS);
  EXPECT_GT(best, 3.5);
  EXPECT_LT(worst, 2.0);
}

// ---- Figure 1: STREAM ------------------------------------------------------

TEST(Figure1, StreamCopyShape) {
  const auto s44 = scale_cores(MachineId::Sg2044, Kernel::StreamCopy,
                               ProblemClass::C);
  const auto s42 = scale_cores(MachineId::Sg2042, Kernel::StreamCopy,
                               ProblemClass::C);
  auto bw_at = [](const ScalingSeries& s, int cores) {
    for (const auto& p : s.points) {
      if (p.cores == cores) return p.prediction.achieved_bw_gbs;
    }
    return 0.0;
  };
  // Comparable up to 8 cores.
  EXPECT_NEAR(bw_at(s44, 1) / bw_at(s42, 1), 1.0, 0.2);
  EXPECT_NEAR(bw_at(s44, 8) / bw_at(s42, 8), 1.0, 0.3);
  // >3x at 64 cores; the SG2042 plateaus beyond 8.
  EXPECT_GT(bw_at(s44, 64) / bw_at(s42, 64), 3.0);
  EXPECT_LT(bw_at(s42, 64) / bw_at(s42, 16), 1.2);
  EXPECT_GT(bw_at(s44, 64) / bw_at(s44, 16), 1.5);
}

// ---- Figures 2-6 prose anchors ---------------------------------------------

TEST(Figure2, IsSingleCoreLagsX86) {
  const double sg = mops(MachineId::Sg2044, Kernel::IS, ProblemClass::C, 1);
  const double epyc = mops(MachineId::Epyc7742, Kernel::IS, ProblemClass::C, 1);
  const double sky = mops(MachineId::Xeon8170, Kernel::IS, ProblemClass::C, 1);
  EXPECT_NEAR(epyc / sg, 2.0, 0.6);   // "around twice"
  EXPECT_NEAR(sky / sg, 3.0, 0.9);    // "around three times"
}

TEST(Figure3, FullChipMgIsCompetitive) {
  // "running on all cores ... the SG2044 is comparable to [Skylake and
  // ThunderX2] whereas the SG2042 falls behind considerably."
  const double sg44 = mops(MachineId::Sg2044, Kernel::MG, ProblemClass::C, 64);
  const double sky = mops(MachineId::Xeon8170, Kernel::MG, ProblemClass::C, 26);
  const double tx2 = mops(MachineId::ThunderX2, Kernel::MG, ProblemClass::C, 32);
  const double sg42 = mops(MachineId::Sg2042, Kernel::MG, ProblemClass::C, 64);
  EXPECT_NEAR(sg44 / sky, 1.0, 0.5);
  EXPECT_NEAR(sg44 / tx2, 1.0, 0.5);
  EXPECT_LT(sg42, 0.6 * sg44);
}

TEST(Figure4, EpTracksSkylakeCoreForCore) {
  for (int n : {1, 4, 16}) {
    const double sg = mops(MachineId::Sg2044, Kernel::EP, ProblemClass::C, n);
    const double sky = mops(MachineId::Xeon8170, Kernel::EP, ProblemClass::C, n);
    EXPECT_NEAR(sg / sky, 1.0, 0.25) << n << " cores";
  }
}

TEST(Figure5, FullSg2044BeatsFullThunderX2OnCg) {
  // "64 cores in the SG2044 outperforms 32 cores of the Arm CPU", even
  // though core-for-core the ThunderX2 wins.
  EXPECT_GT(mops(MachineId::Sg2044, Kernel::CG, ProblemClass::C, 64),
            mops(MachineId::ThunderX2, Kernel::CG, ProblemClass::C, 32));
  EXPECT_LT(mops(MachineId::Sg2044, Kernel::CG, ProblemClass::C, 4),
            mops(MachineId::ThunderX2, Kernel::CG, ProblemClass::C, 4));
}

TEST(Figure5, CgGapVsSg2042BuildsLate) {
  // Similar at small counts; the 2.2x gap only builds from 32 threads.
  const double r8 = mops(MachineId::Sg2044, Kernel::CG, ProblemClass::C, 8) /
                    mops(MachineId::Sg2042, Kernel::CG, ProblemClass::C, 8);
  const double r64 = mops(MachineId::Sg2044, Kernel::CG, ProblemClass::C, 64) /
                     mops(MachineId::Sg2042, Kernel::CG, ProblemClass::C, 64);
  EXPECT_LT(r8, 1.5);
  EXPECT_GT(r64, 1.8);
}

TEST(Figure6, FtStillLagsOtherArchitectures) {
  const double sg44 = mops(MachineId::Sg2044, Kernel::FT, ProblemClass::C, 64);
  EXPECT_GT(sg44, mops(MachineId::Sg2042, Kernel::FT, ProblemClass::C, 64));
  EXPECT_LT(sg44, mops(MachineId::Epyc7742, Kernel::FT, ProblemClass::C, 64));
}

// ---- Table 6: pseudo-applications ------------------------------------------

TEST(Table6, DirectionsAndTrends) {
  for (const auto& row : paper::table6()) {
    if (row.sg2042) {
      const double r = times_faster(MachineId::Sg2042, MachineId::Sg2044,
                                    row.kernel, ProblemClass::C, row.cores);
      EXPECT_LT(r, 1.0) << to_string(row.kernel) << "@" << row.cores;
    }
    if (row.epyc) {
      const double r = times_faster(MachineId::Epyc7742, MachineId::Sg2044,
                                    row.kernel, ProblemClass::C, row.cores);
      EXPECT_GT(r, 1.0) << to_string(row.kernel) << "@" << row.cores;
    }
  }
}

TEST(Table6, GapWithSg2042WidensWithCores) {
  for (Kernel k : npb_pseudo_apps()) {
    const double at16 = times_faster(MachineId::Sg2042, MachineId::Sg2044, k,
                                     ProblemClass::C, 16);
    const double at64 = times_faster(MachineId::Sg2042, MachineId::Sg2044, k,
                                     ProblemClass::C, 64);
    EXPECT_LT(at64, at16) << to_string(k);
  }
}

TEST(Table6, GapWithEpycNarrowsWithCores) {
  for (Kernel k : npb_pseudo_apps()) {
    const double at16 = times_faster(MachineId::Epyc7742, MachineId::Sg2044, k,
                                     ProblemClass::C, 16);
    const double at64 = times_faster(MachineId::Epyc7742, MachineId::Sg2044, k,
                                     ProblemClass::C, 64);
    EXPECT_LT(at64, at16) << to_string(k);
  }
}

// ---- Tables 7/8: compiler & vectorisation ablation -------------------------

TEST(Table7, Gcc15BeatsGcc12SingleCore) {
  const auto& sg = arch::machine(MachineId::Sg2044);
  for (const auto& row : paper::table7_single_core()) {
    const auto sig = signature(row.kernel, ProblemClass::C);
    RunConfig old_cc{1, {CompilerId::Gcc12_3_1, true}, ThreadPlacement::OsDefault};
    // The paper's GCC 15.2 column vectorises except CG (the pathology).
    RunConfig new_cc{1,
                     {CompilerId::Gcc15_2, row.kernel != Kernel::CG},
                     ThreadPlacement::OsDefault};
    EXPECT_GE(predict(sg, sig, new_cc).mops,
              predict(sg, sig, old_cc).mops * 0.995)
        << to_string(row.kernel);
  }
}

TEST(Table7, CgVectorisedRoughlyThreeTimesSlower) {
  const auto& sg = arch::machine(MachineId::Sg2044);
  const auto sig = signature(Kernel::CG, ProblemClass::C);
  RunConfig vec{1, {CompilerId::Gcc15_2, true}, ThreadPlacement::OsDefault};
  RunConfig novec{1, {CompilerId::Gcc15_2, false}, ThreadPlacement::OsDefault};
  const double ratio = predict(sg, sig, novec).mops / predict(sg, sig, vec).mops;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);  // paper: 217.53 / 81.19 = 2.68
}

TEST(Table8, CgPenaltyShrinksButPersistsAt64Cores) {
  const auto& sg = arch::machine(MachineId::Sg2044);
  const auto sig = signature(Kernel::CG, ProblemClass::C);
  RunConfig vec{64, {CompilerId::Gcc15_2, true}, ThreadPlacement::OsDefault};
  RunConfig novec{64, {CompilerId::Gcc15_2, false}, ThreadPlacement::OsDefault};
  const double ratio = predict(sg, sig, novec).mops / predict(sg, sig, vec).mops;
  EXPECT_GT(ratio, 1.3);  // paper: 7728.80 / 4463.18 = 1.73
}

TEST(Table8, IsGainsMostFromTheNewToolchainAt64Cores) {
  const auto& sg = arch::machine(MachineId::Sg2044);
  double is_gain = 0.0;
  for (const auto& row : paper::table8_64_cores()) {
    const auto sig = signature(row.kernel, ProblemClass::C);
    RunConfig old_cc{64, {CompilerId::Gcc12_3_1, true}, ThreadPlacement::OsDefault};
    RunConfig new_cc{64,
                     {CompilerId::Gcc15_2, row.kernel != Kernel::CG},
                     ThreadPlacement::OsDefault};
    const double gain =
        predict(sg, sig, new_cc).mops / predict(sg, sig, old_cc).mops;
    if (row.kernel == Kernel::IS) {
      is_gain = gain;
    } else {
      EXPECT_LT(gain, 1.2) << to_string(row.kernel);
    }
  }
  EXPECT_GT(is_gain, 1.25);  // paper: 3038 / 2256 = 1.35
}

}  // namespace
}  // namespace rvhpc::model
