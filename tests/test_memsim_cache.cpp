// Tests for rvhpc::memsim::Cache — set-associative LRU behaviour.

#include <gtest/gtest.h>

#include "memsim/cache.hpp"

namespace rvhpc::memsim {
namespace {

TEST(Cache, GeometryDerivation) {
  Cache c(32 * 1024, 8, 64);
  EXPECT_EQ(c.sets(), 64u);
  EXPECT_EQ(c.size_bytes(), 32u * 1024u);
  EXPECT_EQ(c.associativity(), 8);
  EXPECT_EQ(c.line_bytes(), 64);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(0, 8, 64), std::invalid_argument);
  EXPECT_THROW(Cache(1024, 0, 64), std::invalid_argument);
  EXPECT_THROW(Cache(1024, 8, 48), std::invalid_argument);   // not pow2 line
  EXPECT_THROW(Cache(1000, 8, 64), std::invalid_argument);   // not divisible
}

TEST(Cache, ColdMissThenHit) {
  Cache c(4096, 4, 64);
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1030, false).hit);  // same 64B line
  EXPECT_FALSE(c.access(0x1040, false).hit); // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictsOldest) {
  // Direct observation of LRU in one set: 2-way, line 64, 2 sets.
  Cache c(256, 2, 64);
  // Set 0 gets lines 0, 2, 4 (even line indices).
  c.access(0 * 64, false);
  c.access(2 * 64, false);
  c.access(0 * 64, false);          // touch line 0: line 2 is now LRU
  const auto r = c.access(4 * 64, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 2u * 64u);
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_FALSE(c.contains(2 * 64));
  EXPECT_TRUE(c.contains(4 * 64));
}

TEST(Cache, DirtyEvictionWritesBack) {
  Cache c(128, 1, 64);  // direct-mapped, 2 sets
  c.access(0, true);                       // dirty line 0 in set 0
  const auto r = c.access(2 * 64, false);  // maps to set 0, evicts
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(c.stats().writebacks, 1u);
  const auto r2 = c.access(4 * 64, false); // clean eviction
  EXPECT_TRUE(r2.evicted);
  EXPECT_FALSE(r2.writeback);
}

TEST(Cache, WriteHitMarksLineDirty) {
  Cache c(128, 1, 64);
  c.access(0, false);
  c.access(0, true);                       // hit-for-write dirties the line
  const auto r = c.access(2 * 64, false);
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, FlushDropsEverythingAndCountsDirty) {
  Cache c(4096, 4, 64);
  c.access(0, true);
  c.access(64, false);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(64));
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  Cache c(64 * 1024, 8, 64);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 32 * 1024; a += 64) c.access(a, false);
  }
  // Second and third passes must be pure hits: 512 misses total.
  EXPECT_EQ(c.stats().misses, 512u);
  EXPECT_EQ(c.stats().hits, 1024u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache c(4 * 1024, 4, 64);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64) c.access(a, false);
  }
  // Cyclic sweep over 16x the capacity with LRU: every access misses.
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Cache, ContainsDoesNotPerturbLru) {
  Cache c(128, 2, 64);
  c.access(0, false);
  c.access(2 * 64, false);
  ASSERT_TRUE(c.contains(0));              // query must not refresh line 0
  const auto r = c.access(4 * 64, false);  // evicts true LRU = line 0
  EXPECT_EQ(r.victim_line, 0u);
}

TEST(CacheStats, Rates) {
  CacheStats s;
  EXPECT_EQ(s.hit_rate(), 0.0);
  s.accesses = 10;
  s.hits = 7;
  s.misses = 3;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.7);
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.3);
}

}  // namespace
}  // namespace rvhpc::memsim
