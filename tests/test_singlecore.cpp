// Tests for rvhpc::model single-core building blocks.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "arch/registry.hpp"
#include "model/signatures.hpp"
#include "model/singlecore.hpp"

namespace rvhpc::model {
namespace {

using arch::MachineId;

const arch::MachineModel& sg2044() { return arch::machine(MachineId::Sg2044); }

TEST(VectorOutcome, ScalarWhenVectorisationDisabled) {
  const auto sig = signature(Kernel::MG, ProblemClass::C);
  const auto out = vector_outcome(sg2044(), sig, {CompilerId::Gcc15_2, false});
  EXPECT_FALSE(out.vectorised);
  EXPECT_DOUBLE_EQ(out.blended_speedup, 1.0);
}

TEST(VectorOutcome, ScalarWhenCompilerCannotTarget) {
  const auto sig = signature(Kernel::MG, ProblemClass::C);
  const auto out = vector_outcome(sg2044(), sig, {CompilerId::Gcc12_3_1, true});
  EXPECT_FALSE(out.vectorised);  // no RVV 1.0 before GCC 13
}

TEST(VectorOutcome, MgGainsFromRvv) {
  const auto sig = signature(Kernel::MG, ProblemClass::C);
  const auto out = vector_outcome(sg2044(), sig, {CompilerId::Gcc15_2, true});
  EXPECT_TRUE(out.vectorised);
  EXPECT_GT(out.blended_speedup, 1.0);
}

TEST(VectorOutcome, CgPathologyOnC920v2) {
  // §6: vectorised CG is ~3x slower on the SG2044.
  const auto sig = signature(Kernel::CG, ProblemClass::C);
  const auto out = vector_outcome(sg2044(), sig, {CompilerId::Gcc15_2, true});
  EXPECT_TRUE(out.vectorised);
  EXPECT_LT(out.gather_speedup, 1.0);
  EXPECT_LT(out.blended_speedup, 0.6);
}

TEST(VectorOutcome, CgFineOnAvx512) {
  const auto sig = signature(Kernel::CG, ProblemClass::C);
  const auto& xeon = arch::machine(MachineId::Xeon8170);
  const auto out = vector_outcome(xeon, sig, {CompilerId::Gcc15_2, true});
  EXPECT_TRUE(out.vectorised);
  EXPECT_GT(out.blended_speedup, 1.0);  // 8 lanes x usable gathers
}

TEST(VectorOutcome, OldCompilersLeaveGathersScalar) {
  // XuanTie GCC never vectorised the SpMV gather, so the SG2042 shows no
  // CG pathology (§4 vs §6).
  const auto sig = signature(Kernel::CG, ProblemClass::C);
  const auto& sg2042 = arch::machine(MachineId::Sg2042);
  const auto out =
      vector_outcome(sg2042, sig, {CompilerId::XuanTieGcc8_4, true});
  EXPECT_TRUE(out.vectorised);
  EXPECT_GT(out.blended_speedup, 0.95);  // effectively scalar, no penalty
}

TEST(VectorOutcome, WiderVectorsHelpMoreOnUnitStride) {
  const auto sig = signature(Kernel::BT, ProblemClass::C);
  const auto& epyc = arch::machine(MachineId::Epyc7742);
  const auto& xeon = arch::machine(MachineId::Xeon8170);
  const auto a2 = vector_outcome(epyc, sig, {CompilerId::Gcc11_2, true});
  const auto a5 = vector_outcome(xeon, sig, {CompilerId::Gcc8_4, true});
  EXPECT_GE(a5.unit_stride_speedup, a2.unit_stride_speedup * 0.9);
}

TEST(CoreRate, Sg2044FasterThanSg2042PerCore) {
  for (Kernel k : npb_kernels()) {
    const auto sig = signature(k, ProblemClass::C);
    const double r44 =
        core_ops_per_second(sg2044(), sig, {CompilerId::Gcc15_2, k != Kernel::CG});
    const double r42 = core_ops_per_second(arch::machine(MachineId::Sg2042),
                                           sig, {CompilerId::XuanTieGcc8_4, true});
    EXPECT_GT(r44, r42) << to_string(k);
  }
}

TEST(CoreRate, ComplexControlEngagesEfficiency) {
  auto sig = signature(Kernel::BT, ProblemClass::C);
  const CompilerConfig cc{CompilerId::Gcc15_2, false};
  const double with = core_ops_per_second(sg2044(), sig, cc);
  sig.complex_control = false;
  const double without = core_ops_per_second(sg2044(), sig, cc);
  EXPECT_LT(with, without);
  EXPECT_NEAR(with / without, sg2044().core.complex_loop_efficiency, 1e-9);
}

TEST(LlcHitFraction, CapacityCapsTheBaseFraction) {
  auto sig = signature(Kernel::CG, ProblemClass::B);
  const double big_llc = effective_llc_hit_fraction(sg2044(), sig);
  const double small_llc =
      effective_llc_hit_fraction(arch::machine(MachineId::AllwinnerD1), sig);
  EXPECT_GT(big_llc, small_llc);
  EXPECT_LE(big_llc, 1.0);
  EXPECT_GE(small_llc, 0.0);
}

TEST(RandomRate, InOrderDependentChainLosesParallelism) {
  auto sig = signature(Kernel::CG, ProblemClass::B);
  const double lat = 150e-9;
  const double ooo = core_random_rate(sg2044(), sig, lat);
  const auto& vf2 = arch::machine(MachineId::VisionFiveV2);
  const double in_order = core_random_rate(vf2, sig, lat);
  EXPECT_GT(ooo, 2.5 * in_order);
}

TEST(RandomRate, IndependentStreamsKeepInOrderParallelism) {
  // IS's histogram updates are independent: the in-order penalty must not
  // apply (only the smaller machine MLP does).
  auto is_sig = signature(Kernel::IS, ProblemClass::B);
  auto cg_sig = signature(Kernel::CG, ProblemClass::B);
  const auto& vf2 = arch::machine(MachineId::VisionFiveV2);
  // Neutralise latency differences by fixing the blend inputs.
  is_sig.random_llc_hit_fraction = cg_sig.random_llc_hit_fraction;
  is_sig.random_footprint_mib = cg_sig.random_footprint_mib;
  is_sig.random_overlap = cg_sig.random_overlap;
  is_sig.working_set_mib = cg_sig.working_set_mib;
  const double lat = 150e-9;
  EXPECT_GT(core_random_rate(vf2, is_sig, lat),
            core_random_rate(vf2, cg_sig, lat));
}

TEST(RandomLatency, BlendsLlcAndDram) {
  const auto sig = signature(Kernel::IS, ProblemClass::C);
  const double dram = 150e-9;
  const double lat = random_access_latency_s(sg2044(), sig, dram);
  const double llc = sg2044().caches.back().latency_cycles /
                     (sg2044().core.clock_ghz * 1e9);
  EXPECT_GT(lat, llc);
  EXPECT_LT(lat, dram);
}

}  // namespace
}  // namespace rvhpc::model
