// Tests for rvhpc::model sensitivity analysis — the model must attribute
// each kernel's performance to the resources the paper says it depends on.

#include <gtest/gtest.h>

#include <cmath>

#include "arch/registry.hpp"
#include "model/sensitivity.hpp"
#include "model/signatures.hpp"

namespace rvhpc::model {
namespace {

double elasticity(const std::vector<Sensitivity>& v, const std::string& p) {
  for (const auto& s : v) {
    if (s.parameter == p) return s.elasticity;
  }
  return 0.0;
}

std::vector<Sensitivity> at(Kernel k, int cores) {
  const auto& m = arch::machine(arch::MachineId::Sg2044);
  RunConfig cfg;
  cfg.cores = cores;
  cfg.compiler = paper_default_compiler(m);
  if (k == Kernel::CG) cfg.compiler.vectorise = false;
  return sensitivities(m, signature(k, ProblemClass::C), cfg);
}

TEST(Sensitivity, EpRidesTheClock) {
  const auto s = at(Kernel::EP, 64);
  EXPECT_NEAR(elasticity(s, "core.clock_ghz"), 1.0, 0.15);
  EXPECT_NEAR(elasticity(s, "memory.stream_efficiency"), 0.0, 0.05);
  EXPECT_NEAR(elasticity(s, "memory.idle_latency_ns"), 0.0, 0.05);
}

TEST(Sensitivity, MgRidesBandwidthAtFullChip) {
  const auto s = at(Kernel::MG, 64);
  EXPECT_GT(elasticity(s, "memory.stream_efficiency"), 0.5);
  EXPECT_LT(elasticity(s, "core.clock_ghz"), 0.4);
}

TEST(Sensitivity, MgRidesPerCoreBandwidthAtOneCore) {
  const auto s = at(Kernel::MG, 1);
  EXPECT_GT(elasticity(s, "memory.per_core_bw_gbs"), 0.2);
  EXPECT_NEAR(elasticity(s, "memory.stream_efficiency"), 0.0, 0.05);
}

TEST(Sensitivity, IsHurtByLatencyHelpedByMlp) {
  const auto s = at(Kernel::IS, 64);
  EXPECT_LT(elasticity(s, "memory.idle_latency_ns"), -0.2);
  EXPECT_GT(elasticity(s, "core.miss_level_parallelism"), 0.2);
}

TEST(Sensitivity, CgMixesComputeAndLatency) {
  const auto s = at(Kernel::CG, 64);
  EXPECT_GT(elasticity(s, "core.clock_ghz"), 0.2);
  EXPECT_LT(elasticity(s, "memory.idle_latency_ns"), -0.02);
}

TEST(Sensitivity, SortedByMagnitude) {
  const auto s = at(Kernel::MG, 64);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(std::fabs(s[i - 1].elasticity), std::fabs(s[i].elasticity));
  }
}

TEST(Sensitivity, CoversEveryParameterForHealthyRuns) {
  EXPECT_EQ(at(Kernel::EP, 64).size(), sensitivity_parameters().size());
}

TEST(Perturbed, ScalesTheNamedParameterOnly) {
  const auto& m = arch::machine(arch::MachineId::Sg2044);
  const auto p = perturbed(m, "core.clock_ghz", 2.0);
  EXPECT_DOUBLE_EQ(p.core.clock_ghz, m.core.clock_ghz * 2.0);
  EXPECT_EQ(p.memory.controllers, m.memory.controllers);
  EXPECT_DOUBLE_EQ(p.core.sustained_scalar_opc, m.core.sustained_scalar_opc);
}

TEST(Perturbed, ClampsBoundedParameters) {
  const auto& m = arch::machine(arch::MachineId::Sg2044);
  EXPECT_LE(perturbed(m, "memory.stream_efficiency", 100.0)
                .memory.stream_efficiency,
            1.0);
  EXPECT_GE(perturbed(m, "memory.controller_queue_depth", 0.0001)
                .memory.controller_queue_depth,
            1);
}

TEST(Perturbed, UnknownParameterThrows) {
  EXPECT_THROW(
      (void)perturbed(arch::machine(arch::MachineId::Sg2044), "nope", 1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace rvhpc::model
