// rvhpc::http — HTTP/1.1 framing and the HTTP front end on net::Server.
//
// Two layers under test.  The parsers (src/http/parser.cpp) are pure
// incremental state machines, so the unit tests feed them whole, split
// and byte-at-a-time inputs and expect identical outcomes.  The
// integration tests run a real Server with the HTTP listener enabled on
// an ephemeral loopback port and drive it with blocking sockets: framing
// edge cases (headers split across reads, pipelined keep-alive), the
// bounded-memory taxonomy (oversized body → 413 + close, malformed
// request line → 400 + close, connection limit → 503 + Retry-After) and
// the drain contract (SIGTERM mid-chunked-response answers every item).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "net/net.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace {

using namespace rvhpc;
using namespace std::chrono_literals;

// --- request parser -------------------------------------------------------

constexpr const char* kPostReq =
    "POST /v1/predict HTTP/1.1\r\n"
    "Host: 127.0.0.1\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 14\r\n"
    "\r\n"
    "{\"cores\": 16}\n";

TEST(HttpRequestParser, WholeRequestInOneFeed) {
  http::RequestParser p;
  const std::string req = kPostReq;
  EXPECT_EQ(p.feed(req), req.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.method(), "POST");
  EXPECT_EQ(p.target(), "/v1/predict");
  EXPECT_EQ(p.version_minor(), 1);
  EXPECT_EQ(p.body(), "{\"cores\": 16}\n");
  EXPECT_TRUE(p.keep_alive());
  ASSERT_NE(p.header("content-type"), nullptr);
  EXPECT_EQ(*p.header("content-type"), "application/json");
}

TEST(HttpRequestParser, HeadersSplitAcrossEveryPossibleRead) {
  // Byte-at-a-time is the adversarial superset of "header split across
  // reads": every boundary — mid-request-line, mid-header-name,
  // between CR and LF, mid-body — is exercised.
  const std::string req = kPostReq;
  http::RequestParser p;
  for (char c : req) {
    ASSERT_FALSE(p.failed());
    EXPECT_EQ(p.feed(std::string_view(&c, 1)), 1u);
  }
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.body(), "{\"cores\": 16}\n");
  EXPECT_EQ(p.headers().size(), 3u);
}

TEST(HttpRequestParser, PipelinedRequestsStopAtMessageBoundary) {
  const std::string two = std::string(kPostReq) + kPostReq;
  http::RequestParser p;
  const std::size_t used = p.feed(two);
  EXPECT_EQ(used, std::strlen(kPostReq))
      << "feed must not consume the next pipelined request";
  ASSERT_TRUE(p.complete());
  p.reset();
  EXPECT_EQ(p.feed(std::string_view(two).substr(used)), std::strlen(kPostReq));
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.body(), "{\"cores\": 16}\n");
}

TEST(HttpRequestParser, HeaderStorageIsExactAfterReset) {
  // reset() keeps header strings as reusable storage; a second request
  // with fewer headers must not leak the first request's extras.
  http::RequestParser p;
  const std::string big =
      "GET /metrics HTTP/1.1\r\nHost: a\r\nAccept: b\r\nUser-Agent: c\r\n\r\n";
  ASSERT_EQ(p.feed(big), big.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.headers().size(), 3u);
  p.reset();
  const std::string small = "GET /healthz HTTP/1.1\r\nHost: z\r\n\r\n";
  ASSERT_EQ(p.feed(small), small.size());
  ASSERT_TRUE(p.complete());
  ASSERT_EQ(p.headers().size(), 1u);
  EXPECT_EQ(p.headers()[0].name, "host");
  EXPECT_EQ(p.headers()[0].value, "z");
  EXPECT_EQ(p.header("accept"), nullptr);
}

TEST(HttpRequestParser, MalformedRequestLineFails) {
  for (const char* bad : {"GARBAGE\r\n", "GET /x\r\n", "GET  /x HTTP/1.1\r\n",
                          "GET /x HTTP/2.0\r\n", "GET /x HTTQ/9\r\n"}) {
    http::RequestParser p;
    p.feed(bad);
    p.feed("\r\n");
    EXPECT_TRUE(p.failed()) << "accepted: " << bad;
    EXPECT_EQ(http::status_for_error(p.error()), 400) << bad;
  }
}

TEST(HttpRequestParser, BodyBeyondLimitIsTypedOversize) {
  http::Limits limits;
  limits.max_body = 64;
  http::RequestParser p(limits);
  p.feed("POST /v1/predict HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error(), http::Error::BodyTooLarge);
  EXPECT_EQ(http::status_for_error(p.error()), 413);
}

TEST(HttpRequestParser, TransferEncodingIsRejected) {
  http::RequestParser p;
  p.feed("POST /v1/predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error(), http::Error::UnsupportedBody);
}

TEST(HttpRequestParser, KeepAliveDefaultsPerVersion) {
  http::RequestParser p;
  p.feed("GET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_TRUE(p.keep_alive());
  p.reset();
  p.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_FALSE(p.keep_alive());
  p.reset();
  p.feed("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_FALSE(p.keep_alive());
  p.reset();
  p.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_TRUE(p.keep_alive());
}

TEST(HttpRequestParser, ExpectContinueIsSurfacedAtHeaderEnd) {
  http::RequestParser p;
  p.feed("POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n"
         "Expect: 100-continue\r\n\r\n");
  EXPECT_FALSE(p.complete());
  ASSERT_TRUE(p.headers_complete());
  EXPECT_TRUE(p.expect_continue());
  p.feed("abcd");
  EXPECT_TRUE(p.complete());
}

// --- response parser ------------------------------------------------------

TEST(HttpResponseParser, ChunkedBodySplitAtEveryByte) {
  const std::string resp =
      "HTTP/1.1 200 OK\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "6\r\nhello\n\r\n"
      "7\r\nworld!\n\r\n"
      "0\r\n\r\n";
  http::ResponseParser p;
  for (char c : resp) {
    ASSERT_FALSE(p.failed());
    EXPECT_EQ(p.feed(std::string_view(&c, 1)), 1u);
  }
  ASSERT_TRUE(p.complete());
  EXPECT_TRUE(p.chunked());
  EXPECT_EQ(p.status(), 200);
  EXPECT_EQ(p.body(), "hello\nworld!\n");
}

TEST(HttpResponseParser, PipelinedResponsesStopAtBoundary) {
  const std::string one =
      "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc";
  const std::string two = one + "HTTP/1.1 404 Not Found\r\n"
                                "Content-Length: 0\r\n\r\n";
  http::ResponseParser p;
  const std::size_t used = p.feed(two);
  EXPECT_EQ(used, one.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.status(), 200);
  EXPECT_EQ(p.body(), "abc");
  p.reset();
  p.feed(std::string_view(two).substr(used));
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.status(), 404);
  EXPECT_TRUE(p.body().empty());
}

TEST(HttpResponseParser, InterimContinueIsSkipped) {
  http::ResponseParser p;
  p.feed("HTTP/1.1 100 Continue\r\n\r\n"
         "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.status(), 200);
  EXPECT_EQ(p.body(), "ok");
}

TEST(HttpResponseParser, EofBodyCompletesOnFinishEof) {
  http::ResponseParser p;
  p.feed("HTTP/1.0 200 OK\r\n\r\npartial");
  EXPECT_FALSE(p.complete());
  p.finish_eof();
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.body(), "partial");
}

// --- server integration ---------------------------------------------------

/// A Service + Server with the HTTP listener enabled, loop on a
/// background thread.  Mirrors test_net's LoopbackServer.
struct HttpServer {
  serve::Service service;
  net::Server server;
  std::ostringstream log;
  std::thread loop;

  explicit HttpServer(net::ServerOptions nopts = with_http(),
                      serve::Service::Options sopts = one_job())
      : service(std::move(sopts)), server(service, nopts) {
    server.open(log);
    loop = std::thread([this] { server.run(log); });
  }

  ~HttpServer() {
    server.stop();
    if (loop.joinable()) loop.join();
  }

  static net::ServerOptions with_http() {
    net::ServerOptions o;
    o.http = true;
    return o;
  }

  static serve::Service::Options one_job() {
    serve::Service::Options o;
    o.jobs = 1;
    return o;
  }

  template <typename Pred>
  bool wait_for(Pred pred, std::chrono::milliseconds budget = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred(server.stats())) return true;
      std::this_thread::sleep_for(2ms);
    }
    return pred(server.stats());
  }
};

/// Minimal blocking test client with a receive timeout.
struct Client {
  int fd = -1;
  std::string buffered;

  explicit Client(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    timeval tv{5, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  [[nodiscard]] bool connected() const { return fd >= 0; }

  bool send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Feeds the socket into `rp` until one response completes (or the
  /// peer hangs up, which completes EOF-framed bodies).  Leftover bytes
  /// stay in `buffered` for the next pipelined response.
  bool recv_response(http::ResponseParser& rp) {
    while (!rp.complete() && !rp.failed()) {
      if (!buffered.empty()) {
        const std::size_t used = rp.feed(buffered);
        buffered.erase(0, used);
        if (used > 0) continue;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        rp.finish_eof();
        break;
      }
      buffered.append(chunk, static_cast<std::size_t>(n));
    }
    return rp.complete();
  }

  /// True when the server closed the connection (EOF within the receive
  /// timeout, no further bytes).
  bool at_eof() {
    char chunk[256];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    return n == 0;
  }
};

std::string predict_line(const std::string& id, int cores) {
  return "{\"id\": \"" + id + "\", \"machine\": \"sg2044\", \"kernel\": "
         "\"MG\", \"cores\": " + std::to_string(cores) + "}\n";
}

std::string slow_line(const std::string& id, int cores) {
  return "{\"id\": \"" + id + "\", \"machine\": \"sg2044\", \"kernel\": "
         "\"CG\", \"class\": \"C\", \"cores\": " + std::to_string(cores) +
         ", \"backend\": \"interval\"}\n";
}

std::string http_post(const std::string& body) {
  return "POST /v1/predict HTTP/1.1\r\nHost: t\r\n"
         "Content-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(HttpServer_, SinglePredictAnswersFixedLength) {
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all(http_post(predict_line("one", 16))));
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  EXPECT_FALSE(rp.chunked());
  ASSERT_NE(rp.header("content-length"), nullptr);
  const auto parsed = obs::json::parse(rp.body());
  EXPECT_EQ(parsed.find("id")->str, "one");
}

TEST(HttpServer_, RequestSplitAcrossManySocketWrites) {
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  const std::string req = http_post(predict_line("split", 8));
  // Dribble the request a few bytes per send with pauses, so the server
  // sees the head and body across many poll() wakeups.
  for (std::size_t off = 0; off < req.size(); off += 7) {
    ASSERT_TRUE(cl.send_all(req.substr(off, 7)));
    std::this_thread::sleep_for(1ms);
  }
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  EXPECT_EQ(obs::json::parse(rp.body()).find("id")->str, "split");
}

TEST(HttpServer_, PipelinedKeepAliveAnswersInOrder) {
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  std::string burst;
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i) {
    burst += http_post(predict_line("p" + std::to_string(i), 1 << i));
  }
  ASSERT_TRUE(cl.send_all(burst));
  for (int i = 0; i < kN; ++i) {
    http::ResponseParser rp;
    ASSERT_TRUE(cl.recv_response(rp)) << "response " << i;
    EXPECT_EQ(rp.status(), 200);
    EXPECT_EQ(obs::json::parse(rp.body()).find("id")->str,
              "p" + std::to_string(i))
        << "pipelined responses must arrive in request order";
  }
}

TEST(HttpServer_, BatchBodyStreamsBackChunked) {
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  std::string body;
  for (int i = 0; i < 3; ++i) {
    body += predict_line("b" + std::to_string(i), 4 << i);
  }
  ASSERT_TRUE(cl.send_all(http_post(body)));
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  EXPECT_TRUE(rp.chunked()) << "a multi-line batch must stream chunked";
  std::istringstream lines(rp.body());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(obs::json::parse(line).find("id")->str,
              "b" + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, 3);
}

TEST(HttpServer_, MalformedRequestLineGets400AndClose) {
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all("NOT A REQUEST LINE AT ALL\r\n\r\n"));
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 400);
  const auto parsed = obs::json::parse(rp.body());
  EXPECT_EQ(parsed.find("status")->str, "error");
  EXPECT_TRUE(cl.at_eof()) << "a framing error must close the connection";
}

TEST(HttpServer_, OversizedBodyGets413AndClose) {
  net::ServerOptions nopts = HttpServer::with_http();
  nopts.max_body_bytes = 128;
  HttpServer s(nopts);
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all(http_post(std::string(512, 'x'))));
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 413);
  EXPECT_TRUE(cl.at_eof()) << "an oversized body must close the connection";
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_oversize == 1;
  }));
}

TEST(HttpServer_, ConnectionLimitGets503WithRetryAfter) {
  net::ServerOptions nopts = HttpServer::with_http();
  nopts.max_connections = 1;
  HttpServer s(nopts);
  Client held(s.server.http_port());
  ASSERT_TRUE(held.connected());
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.accepted == 1;
  }));
  Client refused(s.server.http_port());
  ASSERT_TRUE(refused.connected());
  http::ResponseParser rp;
  ASSERT_TRUE(refused.recv_response(rp));
  EXPECT_EQ(rp.status(), 503);
  ASSERT_NE(rp.header("retry-after"), nullptr);
  EXPECT_EQ(*rp.header("retry-after"), "1");
  EXPECT_EQ(obs::json::parse(rp.body()).find("error")->str, "overloaded");
}

TEST(HttpServer_, MetricsRouteRendersLabelledCounters) {
  obs::set_metrics_enabled(true);
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  std::string burst = http_post(predict_line("m", 2));
  burst += "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_TRUE(cl.send_all(burst));
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  rp.reset();
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  ASSERT_NE(rp.header("content-type"), nullptr);
  EXPECT_NE(rp.header("content-type")->find("text/plain"), std::string::npos);
  EXPECT_NE(rp.body().find("rvhpc_http_requests_total{route=\"/v1/predict\","
                           "status=\"200\"}"),
            std::string::npos)
      << "/metrics must expose the per-route, per-status request counter";
}

TEST(HttpServer_, HealthzAndRouting) {
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  std::string burst =
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /no/such/route HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /v1/predict HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_TRUE(cl.send_all(burst));
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  EXPECT_EQ(obs::json::parse(rp.body()).find("status")->str, "serving");
  rp.reset();
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 404);
  rp.reset();
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 405);
  ASSERT_NE(rp.header("allow"), nullptr);
  EXPECT_EQ(*rp.header("allow"), "POST");
}

TEST(HttpServer_, SigtermDrainFinishesChunkedResponseMidFlight) {
  serve::install_shutdown_handlers();
  serve::reset_shutdown();
  {
    serve::Service::Options sopts;
    sopts.jobs = 2;
    HttpServer s(HttpServer::with_http(), sopts);
    Client cl(s.server.http_port());
    ASSERT_TRUE(cl.connected());
    constexpr int kN = 4;
    std::string body;
    for (int i = 0; i < kN; ++i) {
      body += slow_line("d" + std::to_string(i), 32 + i);
    }
    ASSERT_TRUE(cl.send_all(http_post(body)));
    // Pull the plug once every item is on the compute pool — the chunked
    // response is mid-flight when the drain starts.
    ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
      return st.dispatched >= kN;
    }));
    std::raise(SIGTERM);
    s.loop.join();  // run() must return on its own

    http::ResponseParser rp;
    ASSERT_TRUE(cl.recv_response(rp))
        << "drain must complete the in-flight chunked response";
    EXPECT_EQ(rp.status(), 200);
    EXPECT_TRUE(rp.chunked());
    std::vector<bool> seen(kN, false);
    std::istringstream lines(rp.body());
    std::string line;
    while (std::getline(lines, line)) {
      const std::string id = obs::json::parse(line).find("id")->str;
      ASSERT_EQ(id.size(), 2u);
      seen[static_cast<std::size_t>(id[1] - '0')] = true;
    }
    for (int i = 0; i < kN; ++i) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(i)])
          << "drain dropped in-flight item d" << i;
    }
    EXPECT_NE(s.log.str().find("http exchange(s)"), std::string::npos);
  }
  serve::reset_shutdown();
}

TEST(HttpServer_, BothListenersShareOneServiceAndCache) {
  HttpServer s;
  // Warm through the raw wire, hit through HTTP: one shared cache.
  Client raw(s.server.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.send_all(predict_line("warm", 32)));
  http::ResponseParser unused;  // raw wire: read the line directly
  std::string line;
  {
    char chunk[4096];
    while (line.find('\n') == std::string::npos) {
      const ssize_t n = ::recv(raw.fd, chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0);
      line.append(chunk, static_cast<std::size_t>(n));
    }
  }
  const auto before = s.server.stats().dispatched;

  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all(http_post(predict_line("hit", 32))));
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  EXPECT_EQ(s.server.stats().dispatched, before)
      << "an HTTP request warmed by the raw wire must be a cache hit";
}

// --- HEAD requests --------------------------------------------------------

/// Receives until `cl.buffered` holds one full response head, returns it
/// (through the blank line) and leaves everything after it buffered.
/// HEAD responses carry a Content-Length but no body, so ResponseParser
/// would wait forever — raw bytes are the only honest way to read them.
std::string recv_head(Client& cl) {
  std::size_t end;
  while ((end = cl.buffered.find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(cl.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return {};
    cl.buffered.append(chunk, static_cast<std::size_t>(n));
  }
  std::string head = cl.buffered.substr(0, end + 4);
  cl.buffered.erase(0, end + 4);
  return head;
}

TEST(HttpServer_, HeadHealthzMatchesGetHeadByteForByte) {
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all(
      "HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  // If the HEAD response smuggled any body bytes, they would land at the
  // start of the second head and break both assertions below.
  const std::string head_head = recv_head(cl);
  const std::string get_head = recv_head(cl);
  ASSERT_FALSE(head_head.empty());
  EXPECT_NE(head_head.find("HTTP/1.1 200"), std::string::npos) << head_head;
  EXPECT_NE(head_head.find("Content-Length: "), std::string::npos);
  EXPECT_EQ(head_head, get_head)
      << "HEAD must answer exactly the GET headers";
  // The advertised length matches the GET body that follows.
  const std::size_t cl_pos = get_head.find("Content-Length: ") + 16;
  const std::size_t want = std::stoul(get_head.substr(cl_pos));
  ASSERT_GT(want, 0u);
  while (cl.buffered.size() < want) {
    char chunk[4096];
    const ssize_t n = ::recv(cl.fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    cl.buffered.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(cl.buffered.size(), want);
  EXPECT_EQ(obs::json::parse(cl.buffered).find("status")->str, "serving");
}

TEST(HttpServer_, HeadMetricsAnswersHeadersOnly) {
  obs::set_metrics_enabled(true);
  HttpServer s;
  Client cl(s.server.http_port());
  ASSERT_TRUE(cl.connected());
  ASSERT_TRUE(cl.send_all(
      "HEAD /metrics HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string head = recv_head(cl);
  ASSERT_FALSE(head.empty());
  EXPECT_NE(head.find("HTTP/1.1 200"), std::string::npos) << head;
  EXPECT_NE(head.find("text/plain"), std::string::npos) << head;
  EXPECT_NE(head.find("Content-Length: "), std::string::npos) << head;
  // The healthz response must follow immediately: no metrics body bytes.
  http::ResponseParser rp;
  ASSERT_TRUE(cl.recv_response(rp));
  EXPECT_EQ(rp.status(), 200);
  EXPECT_EQ(obs::json::parse(rp.body()).find("status")->str, "serving");
}

// --- header-read timeout (slow loris) -------------------------------------

TEST(HttpServer_, SlowLorisHeadersAnswered408AndCounted) {
  obs::set_metrics_enabled(true);
  net::ServerOptions nopts = HttpServer::with_http();
  nopts.header_timeout_ms = 60;
  nopts.poll_interval_ms = 5;
  HttpServer s(nopts);

  // A well-behaved keep-alive client: its requests complete, so however
  // long it idles between them the header deadline must never bite.
  Client good(s.server.http_port());
  ASSERT_TRUE(good.connected());
  ASSERT_TRUE(good.send_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  http::ResponseParser ok;
  ASSERT_TRUE(good.recv_response(ok));
  EXPECT_EQ(ok.status(), 200);

  // The loris drips its header bytes forever without the closing blank
  // line; every drip would reset an idle timeout, but not this one.
  Client loris(s.server.http_port());
  ASSERT_TRUE(loris.connected());
  const std::string req = "GET /healthz HTTP/1.1\r\nHost: dribble\r\n";
  for (char c : req) {
    if (!loris.send_all(std::string(1, c))) break;  // server hung up
    std::this_thread::sleep_for(5ms);
  }
  http::ResponseParser rp;
  ASSERT_TRUE(loris.recv_response(rp));
  EXPECT_EQ(rp.status(), 408);
  EXPECT_TRUE(loris.at_eof());
  ASSERT_TRUE(s.wait_for([](const net::ServerStats& st) {
    return st.disconnect_header_timeout == 1;
  }));

  // The patient complete-request client survived the purge...
  ASSERT_TRUE(good.send_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  http::ResponseParser again;
  ASSERT_TRUE(good.recv_response(again));
  EXPECT_EQ(again.status(), 200);

  // ...and the scrape exposes the exact labeled counter.
  Client m(s.server.http_port());
  ASSERT_TRUE(m.connected());
  ASSERT_TRUE(m.send_all("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"));
  http::ResponseParser metrics;
  ASSERT_TRUE(m.recv_response(metrics));
  EXPECT_NE(metrics.body().find(
                "rvhpc_net_disconnect_total{reason=\"header_timeout\"}"),
            std::string::npos)
      << "the disconnect must surface as "
         "rvhpc_net_disconnect_total{reason=\"header_timeout\"}";
}

}  // namespace
