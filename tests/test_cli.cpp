// Tests for rvhpc::cli — the shared --help/--version plumbing used by
// rvhpc-lint and rvhpc-profile.

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <vector>

#include "cli/cli.hpp"

using namespace rvhpc;

namespace {

const cli::ToolInfo kTool{
    "rvhpc-test", "exercises the shared CLI helpers",
    "usage: rvhpc-test [options]\n  --frob   frob the knob"};

/// Runs handle_standard_flags over a writable copy of `argv`.
bool run_flags(std::vector<std::string> argv, std::ostream& os) {
  std::vector<char*> ptrs;
  ptrs.reserve(argv.size());
  for (std::string& a : argv) ptrs.push_back(a.data());
  return cli::handle_standard_flags(static_cast<int>(ptrs.size()), ptrs.data(),
                                    kTool, os);
}

}  // namespace

TEST(CliVersion, LooksLikeSemver) {
  const std::string v = cli::version_string();
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(v.front()))) << v;
  EXPECT_NE(v.find('.'), std::string::npos) << v;
}

TEST(CliVersion, PrintFormatsNameAndVersion) {
  std::ostringstream os;
  cli::print_version(os, kTool);
  EXPECT_EQ(os.str(), "rvhpc-test (rvhpc " + cli::version_string() + ")\n");
}

TEST(CliHelp, ContainsOneLinerAndUsage) {
  std::ostringstream os;
  cli::print_help(os, kTool);
  const std::string out = os.str();
  EXPECT_NE(out.find("rvhpc-test"), std::string::npos);
  EXPECT_NE(out.find("exercises the shared CLI helpers"), std::string::npos);
  EXPECT_NE(out.find("--frob   frob the knob"), std::string::npos);
}

TEST(CliFlags, HandlesHelpAndVersionAnywhereInArgv) {
  for (const char* flag : {"--help", "-h", "--version"}) {
    std::ostringstream os;
    EXPECT_TRUE(run_flags({"rvhpc-test", "--machine", "sg2044", flag}, os))
        << flag;
    EXPECT_FALSE(os.str().empty()) << flag;
  }
}

TEST(CliFlags, IgnoresOrdinaryArguments) {
  std::ostringstream os;
  EXPECT_FALSE(run_flags({"rvhpc-test"}, os));
  EXPECT_FALSE(run_flags({"rvhpc-test", "--machine", "sg2044"}, os));
  EXPECT_FALSE(run_flags({"rvhpc-test", "--helpful", "-hh"}, os));
  EXPECT_TRUE(os.str().empty());
}
