// rvhpc::serve — persistent cache and prediction service.
//
// The load-bearing guarantees: the cache file round-trips bit-exactly and
// all-or-nothing (a damaged file restores nothing and is never fatal), LRU
// recency survives save/load, and the service answers *every* request line
// with structured JSON — malformed input, lint rejections, timeouts and
// overload included — without ever throwing out of the serving loop.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "engine/cache.hpp"
#include "obs/json.hpp"
#include "serve/persist.hpp"
#include "serve/service.hpp"

namespace {

using namespace rvhpc;

/// RAII temp path: removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

model::Prediction sample_prediction(double seed) {
  model::Prediction p;
  p.seconds = seed;
  p.mops = seed * 10.0;
  p.achieved_bw_gbs = seed / 3.0;
  p.vector.vectorised = true;
  p.vector.blended_speedup = 1.5;
  p.breakdown.compute_s = seed / 2.0;
  p.breakdown.stream_s = seed / 4.0;
  p.breakdown.dominant = model::Bottleneck::StreamBandwidth;
  return p;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- persistence ----------------------------------------------------------

TEST(PersistentCache, RoundTripsEntriesBitExactly) {
  TempFile f("test_serve_roundtrip.tmp.bin");
  engine::PredictionCache cache(8);
  cache.put(11, sample_prediction(0.1));
  cache.put(22, sample_prediction(0.2));
  model::Prediction dnr;
  dnr.ran = false;
  dnr.dnr_reason = "out of memory: needs 5 GiB, machine has 1 GiB";
  cache.put(33, dnr);
  serve::save_cache(f.path, cache);

  engine::PredictionCache loaded(8);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.restored, 3u);
  EXPECT_EQ(loaded.size(), 3u);

  const auto p = loaded.get(22);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(p->seconds),
            std::bit_cast<std::uint64_t>(0.2));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(p->breakdown.stream_s),
            std::bit_cast<std::uint64_t>(0.2 / 4.0));
  EXPECT_TRUE(p->vector.vectorised);
  EXPECT_EQ(p->breakdown.dominant, model::Bottleneck::StreamBandwidth);

  const auto d = loaded.get(33);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->ran);
  EXPECT_EQ(d->dnr_reason, "out of memory: needs 5 GiB, machine has 1 GiB");
}

TEST(PersistentCache, MissingFileIsACleanColdStart) {
  engine::PredictionCache cache(4);
  const serve::LoadResult r =
      serve::load_cache("test_serve_nonexistent.tmp.bin", cache);
  EXPECT_EQ(r.status, serve::LoadResult::Status::Missing);
  EXPECT_EQ(r.restored, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PersistentCache, RejectsVersionMismatch) {
  TempFile f("test_serve_version.tmp.bin");
  engine::PredictionCache cache(4);
  cache.put(1, sample_prediction(1.0));
  serve::save_cache(f.path, cache);

  std::string bytes = slurp(f.path);
  bytes[4] = static_cast<char>(serve::kCacheFormatVersion + 1);  // u32 LE lsb
  spit(f.path, bytes);

  engine::PredictionCache loaded(4);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_EQ(r.status, serve::LoadResult::Status::VersionMismatch);
  EXPECT_EQ(loaded.size(), 0u) << "mismatched file must restore nothing";
  EXPECT_NE(r.detail.find("version"), std::string::npos);
}

TEST(PersistentCache, TruncatedFileRestoresNothing) {
  TempFile f("test_serve_truncated.tmp.bin");
  engine::PredictionCache cache(4);
  cache.put(1, sample_prediction(1.0));
  cache.put(2, sample_prediction(2.0));
  serve::save_cache(f.path, cache);

  const std::string bytes = slurp(f.path);
  // Cut mid-payload: the first entry's bytes are intact, but the checksum
  // cannot verify — the all-or-nothing contract restores zero entries.
  spit(f.path, bytes.substr(0, bytes.size() / 2));

  engine::PredictionCache loaded(4);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_EQ(r.status, serve::LoadResult::Status::Corrupt);
  EXPECT_EQ(r.restored, 0u);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(PersistentCache, BitFlippedPayloadIsRejected) {
  TempFile f("test_serve_corrupt.tmp.bin");
  engine::PredictionCache cache(4);
  cache.put(7, sample_prediction(3.0));
  serve::save_cache(f.path, cache);

  std::string bytes = slurp(f.path);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  spit(f.path, bytes);

  engine::PredictionCache loaded(4);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_EQ(r.status, serve::LoadResult::Status::Corrupt);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(PersistentCache, GarbageFileIsRejectedNotFatal) {
  TempFile f("test_serve_garbage.tmp.bin");
  spit(f.path, "this is not a cache file at all");
  engine::PredictionCache loaded(4);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_EQ(r.status, serve::LoadResult::Status::Corrupt);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(PersistentCache, LruOrderSurvivesSaveAndLoad) {
  TempFile f("test_serve_lru.tmp.bin");
  engine::PredictionCache cache(4);
  for (std::uint64_t k = 1; k <= 4; ++k) cache.put(k, sample_prediction(1.0));
  (void)cache.get(2);  // recency (MRU first) is now 2, 4, 3, 1
  serve::save_cache(f.path, cache);

  engine::PredictionCache loaded(4);
  ASSERT_TRUE(serve::load_cache(f.path, loaded).ok());

  // Overflowing the restored cache must evict the *original* LRU entry
  // (key 1), proving recency crossed the save/load boundary.
  loaded.put(99, sample_prediction(9.0));
  EXPECT_FALSE(loaded.get(1).has_value());
  EXPECT_TRUE(loaded.get(2).has_value());
  EXPECT_TRUE(loaded.get(3).has_value());
  EXPECT_TRUE(loaded.get(4).has_value());
}

TEST(PersistentCache, SaveCapTrimsOldestLruEntriesFirst) {
  TempFile f("test_serve_cap.tmp.bin");
  engine::PredictionCache cache(8);
  for (std::uint64_t k = 1; k <= 5; ++k) cache.put(k, sample_prediction(1.0));
  (void)cache.get(1);  // recency (MRU first) is now 1, 5, 4, 3, 2

  const serve::SaveResult saved = serve::save_cache(f.path, cache, 3);
  EXPECT_EQ(saved.written, 3u);
  EXPECT_EQ(saved.trimmed, 2u);

  engine::PredictionCache loaded(8);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.restored, 3u);
  EXPECT_EQ(r.trimmed, 2u) << "the file must say how much the cap dropped";
  // The three most recent survive; the two oldest-LRU (2 and 3) are gone.
  EXPECT_TRUE(loaded.get(1).has_value());
  EXPECT_TRUE(loaded.get(5).has_value());
  EXPECT_TRUE(loaded.get(4).has_value());
  EXPECT_FALSE(loaded.get(3).has_value());
  EXPECT_FALSE(loaded.get(2).has_value());
}

TEST(PersistentCache, CapBelowSizeIsANoOpNotATrim) {
  TempFile f("test_serve_cap_noop.tmp.bin");
  engine::PredictionCache cache(8);
  cache.put(1, sample_prediction(1.0));
  cache.put(2, sample_prediction(2.0));
  const serve::SaveResult saved = serve::save_cache(f.path, cache, 16);
  EXPECT_EQ(saved.written, 2u);
  EXPECT_EQ(saved.trimmed, 0u);
}

TEST(PersistentCache, ReadsVersionOneFilesWithoutTheTrimmedField) {
  // A v1 file is a v2 file minus the trimmed u64 at offset 16, stamped
  // version 1.  The checksum seals only the payload, which is unchanged,
  // so the surgery below produces exactly what a v1 build wrote.
  TempFile f("test_serve_v1.tmp.bin");
  engine::PredictionCache cache(4);
  cache.put(11, sample_prediction(0.5));
  cache.put(22, sample_prediction(0.7));
  serve::save_cache(f.path, cache);

  std::string bytes = slurp(f.path);
  bytes.erase(16, 8);  // drop the v2-only trimmed count
  bytes[4] = 1;        // version u32 LE lsb -> 1
  spit(f.path, bytes);

  engine::PredictionCache loaded(4);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_TRUE(r.ok()) << r.detail;
  EXPECT_EQ(r.restored, 2u);
  EXPECT_EQ(r.trimmed, 0u) << "v1 files never recorded a trim";
  EXPECT_TRUE(loaded.get(11).has_value());
  EXPECT_TRUE(loaded.get(22).has_value());
}

// --- service request handling --------------------------------------------

serve::Service::Options no_persist() {
  serve::Service::Options o;
  o.jobs = 1;
  return o;
}

obs::json::Value parsed(const std::string& response) {
  return obs::json::parse(response);
}

TEST(Service, AnswersAValidRequest) {
  serve::Service svc(no_persist());
  const auto v = parsed(svc.handle_line(
      R"({"id": "q1", "machine": "sg2044", "kernel": "CG", "class": "C", "cores": 64, "tag": "t"})"));
  EXPECT_EQ(v.find("status")->str, "ok");
  EXPECT_EQ(v.find("id")->str, "q1");
  EXPECT_EQ(v.find("tag")->str, "t");
  EXPECT_EQ(v.find("machine")->str, "sg2044");
  EXPECT_EQ(v.find("bottleneck")->str, "compute");
  EXPECT_TRUE(v.find("ran")->boolean);
  EXPECT_GT(v.find("seconds")->num, 0.0);
  EXPECT_GT(v.find("mops")->num, 0.0);
  // Live-mode attribution fields are present by default.
  EXPECT_EQ(v.find("cache")->str, "miss");
  ASSERT_NE(v.find("latency_us"), nullptr);

  const serve::ServiceStats s = svc.stats();
  EXPECT_EQ(s.received, 1u);
  EXPECT_EQ(s.ok, 1u);
  EXPECT_EQ(s.cache_hits, 0u);
}

TEST(Service, SecondIdenticalRequestHitsTheCache) {
  serve::Service svc(no_persist());
  const std::string line =
      R"({"id": "q", "machine": "sg2042", "kernel": "MG", "cores": 32})";
  const auto first = parsed(svc.handle_line(line));
  const auto second = parsed(svc.handle_line(line));
  EXPECT_EQ(first.find("cache")->str, "miss");
  EXPECT_EQ(second.find("cache")->str, "hit");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first.find("seconds")->num),
            std::bit_cast<std::uint64_t>(second.find("seconds")->num));
  EXPECT_EQ(svc.stats().cache_hits, 1u);
}

TEST(Service, BackendSelectsTheMechanismAndKeysTheCacheSeparately) {
  serve::Service svc(no_persist());
  const auto analytic = parsed(svc.handle_line(
      R"({"id": "a", "machine": "sg2044", "kernel": "CG", "class": "C", "cores": 64})"));
  const auto interval = parsed(svc.handle_line(
      R"({"id": "i", "machine": "sg2044", "kernel": "CG", "class": "C", "cores": 64, "backend": "interval"})"));

  EXPECT_EQ(analytic.find("backend")->str, "analytic");
  EXPECT_EQ(interval.find("backend")->str, "interval");
  // Same point, different mechanism: the interval request must be a cache
  // MISS even though the analytic twin was just evaluated — the backend is
  // part of the memo key.
  EXPECT_EQ(analytic.find("cache")->str, "miss");
  EXPECT_EQ(interval.find("cache")->str, "miss");
  EXPECT_NE(analytic.find("seconds")->num, interval.find("seconds")->num);

  // A warm interval repeat hits its own entry and serves the interval
  // result, never the analytic one.
  const auto warm = parsed(svc.handle_line(
      R"({"id": "w", "machine": "sg2044", "kernel": "CG", "class": "C", "cores": 64, "backend": "interval"})"));
  EXPECT_EQ(warm.find("cache")->str, "hit");
  EXPECT_EQ(warm.find("backend")->str, "interval");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.find("seconds")->num),
            std::bit_cast<std::uint64_t>(interval.find("seconds")->num));
  EXPECT_EQ(svc.stats().cache_hits, 1u);
}

TEST(Service, UnknownBackendIsAStructuredParseError) {
  serve::Service svc(no_persist());
  const auto v = parsed(svc.handle_line(
      R"({"id": "q", "machine": "sg2044", "kernel": "CG", "backend": "quantum"})"));
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "parse");
  EXPECT_NE(v.find("message")->str.find("quantum"), std::string::npos);
  EXPECT_EQ(svc.stats().parse_errors, 1u);
}

TEST(Service, MalformedJsonGetsAStructuredParseError) {
  serve::Service svc(no_persist());
  const auto v = parsed(svc.handle_line("{\"id\": \"x\", "));
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "parse");
  EXPECT_FALSE(v.find("message")->str.empty());
  EXPECT_EQ(svc.stats().parse_errors, 1u);
}

TEST(Service, UnknownMachineAndKernelAreParseErrors) {
  serve::Service svc(no_persist());
  const auto m = parsed(
      svc.handle_line(R"({"id": "a", "machine": "cray-1", "kernel": "CG"})"));
  EXPECT_EQ(m.find("error")->str, "parse");
  EXPECT_EQ(m.find("id")->str, "a") << "parseable requests echo their id";

  const auto k = parsed(svc.handle_line(
      R"({"id": "b", "machine": "sg2044", "kernel": "LINPACK"})"));
  EXPECT_EQ(k.find("error")->str, "parse");
  EXPECT_EQ(svc.stats().parse_errors, 2u);
}

TEST(Service, LintRejectsImplausibleMachineTextWithDetail) {
  // DDR5-6400 peaks at 51.2 GB/s per channel; 99 trips A001 (Error).  The
  // fixture's line 20 carries the same machine; this is the inline twin.
  std::ifstream fx(std::string(RVHPC_SOURCE_DIR) +
                   "/tests/data/serve_replay20.jsonl");
  std::string line, last;
  while (std::getline(fx, line)) {
    if (!line.empty()) last = line;
  }
  ASSERT_NE(last.find("machine_text"), std::string::npos);
  line = last;
  serve::Service svc(no_persist());
  const auto v = parsed(svc.handle_line(line));
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "lint");
  const obs::json::Value* detail = v.find("detail");
  ASSERT_NE(detail, nullptr);
  ASSERT_FALSE(detail->array.empty());
  EXPECT_NE(detail->array[0].str.find("A001"), std::string::npos);
  EXPECT_EQ(svc.stats().lint_rejected, 1u);

  // The same request is admitted when admission lint is off.
  serve::Service::Options opts = no_persist();
  opts.lint_admission = false;
  serve::Service lax(opts);
  EXPECT_EQ(parsed(lax.handle_line(line)).find("status")->str, "ok");
}

TEST(Service, TopologyMachineTextAdmitsThroughLintLikeAnyOther) {
  // The topology overlay (DESIGN.md §15) rides the same machine_text
  // admission path: a clean dual-socket machine predicts, a broken core
  // partition is an A301 lint reject, a dangling link endpoint fails
  // structural validation — the wire needs no topology-specific code.
  const auto escaped = [](const std::string& text) {
    std::string out;
    for (char ch : text) {
      if (ch == '\n') out += "\\n";
      else if (ch == '"') out += "\\\"";
      else out += ch;
    }
    return out;
  };
  const auto request = [&](const arch::MachineModel& m) {
    return R"({"id": "topo", "machine_text": ")" + escaped(arch::to_text(m)) +
           R"(", "kernel": "EP", "cores": 128})";
  };
  serve::Service svc(no_persist());

  const auto ok = parsed(svc.handle_line(request(arch::machine("sg2044-dual"))));
  EXPECT_EQ(ok.find("status")->str, "ok");

  arch::MachineModel unbalanced = arch::machine("sg2044-dual");
  unbalanced.topology.domains[0].cores -= 1;  // A301: cores no longer partition
  const auto lint = parsed(svc.handle_line(request(unbalanced)));
  EXPECT_EQ(lint.find("status")->str, "error");
  EXPECT_EQ(lint.find("error")->str, "lint");
  const obs::json::Value* detail = lint.find("detail");
  ASSERT_NE(detail, nullptr);
  ASSERT_FALSE(detail->array.empty());
  EXPECT_NE(detail->array[0].str.find("A301"), std::string::npos);

  arch::MachineModel dangling = arch::machine("sg2044-dual");
  dangling.topology.links[0].to = "ghost";
  const auto bad = parsed(svc.handle_line(request(dangling)));
  EXPECT_EQ(bad.find("status")->str, "error");
  EXPECT_EQ(bad.find("error")->str, "parse")
      << "dangling endpoints are a from_text parse reject, line-numbered";
  EXPECT_NE(bad.find("message")->str.find("ghost"), std::string::npos);
}

TEST(Service, ExpiredDeadlineAnswersTimeout) {
  serve::Service::Options opts = no_persist();
  opts.default_timeout_ms = 1e-6;  // 1 ns: parsing alone exceeds it
  serve::Service svc(opts);
  const auto v = parsed(svc.handle_line(
      R"({"id": "t", "machine": "sg2044", "kernel": "EP", "cores": 8})"));
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "timeout");
  EXPECT_EQ(svc.stats().timeouts, 1u);
}

TEST(Service, FullBacklogAnswersOverloaded) {
  serve::Service::Options opts = no_persist();
  opts.queue_capacity = 0;  // reject everything: deterministic drill
  serve::Service svc(opts);
  std::istringstream in(
      R"({"id": "o", "machine": "sg2044", "kernel": "CG", "cores": 4})"
      "\n");
  std::ostringstream out, log;
  svc.run(in, out, log);
  const auto v = parsed(out.str());
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error")->str, "overloaded");
  EXPECT_EQ(svc.stats().overloaded, 1u);
}

TEST(Service, RunAnswersEveryLineAndDrains) {
  serve::Service::Options opts = no_persist();
  opts.jobs = 2;
  serve::Service svc(opts);
  std::istringstream in(
      R"({"id": "1", "machine": "sg2044", "kernel": "CG", "cores": 64})"
      "\n"
      "\n"  // blank lines are skipped, not answered
      "garbage\n"
      R"({"id": "3", "machine": "sg2042", "kernel": "EP", "cores": 16})"
      "\n");
  std::ostringstream out, log;
  svc.run(in, out, log);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_NO_THROW((void)obs::json::parse(line)) << line;
  }
  EXPECT_EQ(count, 3u) << "every non-blank request line gets one response";
  EXPECT_EQ(svc.stats().received, 3u);
  EXPECT_EQ(svc.stats().ok, 2u);
  EXPECT_EQ(svc.stats().parse_errors, 1u);
  EXPECT_NE(log.str().find("drained"), std::string::npos);
}

// --- replay over the checked-in fixture ----------------------------------

const std::string kFixture =
    std::string(RVHPC_SOURCE_DIR) + "/tests/data/serve_replay20.jsonl";

TEST(ServiceReplay, FixtureProducesExpectedMix) {
  serve::Service svc(no_persist());
  std::ostringstream out, log;
  const std::string summary = svc.replay(kFixture, out, log);

  const serve::ServiceStats s = svc.stats();
  EXPECT_EQ(s.received, 24u);
  EXPECT_EQ(s.ok, 20u);
  EXPECT_EQ(s.dnr, 1u) << "class C FT cannot fit the Allwinner D1's 1 GiB";
  EXPECT_EQ(s.parse_errors, 3u) << "r18 truncated, r19 unknown kernel, "
                                   "r24 backend=quantum";
  EXPECT_EQ(s.lint_rejected, 1u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_NE(summary.find("cache-hit-rate:"), std::string::npos);
  EXPECT_NE(summary.find("cache-restored: 0"), std::string::npos);

  // Replay output is deterministic: no live-mode fields.
  EXPECT_EQ(out.str().find("latency_us"), std::string::npos);
  EXPECT_EQ(out.str().find("\"cache\""), std::string::npos);
}

TEST(ServiceReplay, WarmRunIsBitIdenticalAndFullyCached) {
  TempFile f("test_serve_replay_cache.tmp.bin");
  std::string cold, warm;
  {
    serve::Service::Options opts = no_persist();
    opts.cache_file = f.path;
    serve::Service svc(opts);
    std::ostringstream out, log;
    svc.start(log);
    (void)svc.replay(kFixture, out, log);
    cold = out.str();
    EXPECT_EQ(svc.stats().restored, 0u);
  }
  {
    serve::Service::Options opts = no_persist();
    opts.cache_file = f.path;
    serve::Service svc(opts);
    std::ostringstream out, log;
    svc.start(log);
    (void)svc.replay(kFixture, out, log);
    warm = out.str();
    const serve::ServiceStats s = svc.stats();
    EXPECT_EQ(s.restored, 18u)
        << "20 ok responses over 18 distinct keys: r17 repeats r01, r23 is "
           "r01 with backend=analytic spelled out, and r21's interval twin "
           "of r01 keys separately";
    EXPECT_EQ(s.cache_hits, s.ok) << "a warm replay never re-predicts";
  }
  EXPECT_EQ(cold, warm);
  EXPECT_FALSE(cold.empty());
}

TEST(ServiceReplay, CorruptCacheFileIsAColdStartNotACrash) {
  TempFile f("test_serve_replay_corrupt.tmp.bin");
  spit(f.path, "RVPC garbage that is certainly not a valid payload");
  serve::Service::Options opts = no_persist();
  opts.cache_file = f.path;
  serve::Service svc(opts);
  std::ostringstream out, log;
  EXPECT_EQ(svc.start(log), 0u);
  EXPECT_NE(log.str().find("WARNING"), std::string::npos);
  (void)svc.replay(kFixture, out, log);
  EXPECT_EQ(svc.stats().ok, 20u) << "service must serve normally after "
                                    "ignoring a corrupt cache file";
}

TEST(Service, FlushWritesALoadableSnapshot) {
  TempFile f("test_serve_flush.tmp.bin");
  serve::Service::Options opts = no_persist();
  opts.cache_file = f.path;
  serve::Service svc(opts);
  (void)svc.handle_line(
      R"({"id": "f", "machine": "sg2044", "kernel": "CG", "cores": 64})");
  std::ostringstream log;
  svc.flush(log);

  engine::PredictionCache loaded(16);
  const serve::LoadResult r = serve::load_cache(f.path, loaded);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.restored, 1u);
}

}  // namespace
