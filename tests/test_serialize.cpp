// Tests for rvhpc::arch machine (de)serialisation.

#include <gtest/gtest.h>

#include <sstream>

#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "arch/validate.hpp"

namespace rvhpc::arch {
namespace {

class RoundTrip : public ::testing::TestWithParam<MachineId> {};
INSTANTIATE_TEST_SUITE_P(EveryRegistryMachine, RoundTrip,
                         ::testing::ValuesIn(all_machines()),
                         [](const auto& pinfo) {
                           std::string n = name_of(pinfo.param);
                           for (char& c : n) if (c == '-') c = '_';
                           return n;
                         });

TEST_P(RoundTrip, TextPreservesEveryField) {
  const MachineModel& m = machine(GetParam());
  const MachineModel back = from_text(to_text(m));
  EXPECT_EQ(back.name, m.name);
  EXPECT_EQ(back.part, m.part);
  EXPECT_EQ(back.isa, m.isa);
  EXPECT_EQ(back.cores, m.cores);
  EXPECT_EQ(back.cluster_size, m.cluster_size);
  EXPECT_DOUBLE_EQ(back.core.clock_ghz, m.core.clock_ghz);
  EXPECT_EQ(back.core.out_of_order, m.core.out_of_order);
  EXPECT_EQ(back.core.decode_width, m.core.decode_width);
  EXPECT_EQ(back.core.issue_width, m.core.issue_width);
  EXPECT_DOUBLE_EQ(back.core.sustained_scalar_opc, m.core.sustained_scalar_opc);
  EXPECT_EQ(back.core.miss_level_parallelism, m.core.miss_level_parallelism);
  EXPECT_DOUBLE_EQ(back.core.complex_loop_efficiency,
                   m.core.complex_loop_efficiency);
  EXPECT_EQ(back.core.vector.isa, m.core.vector.isa);
  EXPECT_EQ(back.core.vector.width_bits, m.core.vector.width_bits);
  EXPECT_DOUBLE_EQ(back.core.vector.gather_efficiency,
                   m.core.vector.gather_efficiency);
  ASSERT_EQ(back.caches.size(), m.caches.size());
  for (std::size_t i = 0; i < m.caches.size(); ++i) {
    EXPECT_EQ(back.caches[i].name, m.caches[i].name);
    EXPECT_EQ(back.caches[i].size_bytes, m.caches[i].size_bytes);
    EXPECT_EQ(back.caches[i].shared_by_cores, m.caches[i].shared_by_cores);
  }
  EXPECT_EQ(back.memory.controllers, m.memory.controllers);
  EXPECT_EQ(back.memory.channels, m.memory.channels);
  EXPECT_EQ(back.memory.ddr_kind, m.memory.ddr_kind);
  EXPECT_DOUBLE_EQ(back.memory.stream_efficiency, m.memory.stream_efficiency);
  EXPECT_DOUBLE_EQ(back.memory.read_bw_bonus, m.memory.read_bw_bonus);
  EXPECT_DOUBLE_EQ(back.memory.dram_gib, m.memory.dram_gib);
}

TEST_P(RoundTrip, RoundTrippedMachineStillValidates) {
  EXPECT_TRUE(is_valid(from_text(to_text(machine(GetParam())))));
}

TEST(FromText, PartialFileKeepsDefaults) {
  const MachineModel m = from_text("name = tiny\ncores = 2\n");
  EXPECT_EQ(m.name, "tiny");
  EXPECT_EQ(m.cores, 2);
  EXPECT_EQ(m.cluster_size, 1);           // default
  EXPECT_EQ(m.caches.size(), 1u);         // injected default L1
  EXPECT_EQ(m.caches[0].name, "L1D");
}

TEST(FromText, CommentsAndBlankLinesIgnored) {
  const MachineModel m =
      from_text("# a comment\n\nname = x\n   # indented comment\ncores = 4\n");
  EXPECT_EQ(m.name, "x");
  EXPECT_EQ(m.cores, 4);
}

TEST(FromText, UnknownKeyIsAnErrorWithLineNumber) {
  try {
    (void)from_text("name = x\ncorse = 4\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("corse"), std::string::npos);
  }
}

TEST(FromText, MalformedNumberRejected) {
  EXPECT_THROW((void)from_text("cores = four\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("core.clock_ghz = 2.5GHz\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_text("cores = 2.5\n"), std::invalid_argument);
}

TEST(FromText, MissingEqualsRejected) {
  EXPECT_THROW((void)from_text("name x\n"), std::invalid_argument);
}

TEST(FromText, MalformedCacheLineRejected) {
  EXPECT_THROW((void)from_text("cache = L1D 32768\n"), std::invalid_argument);
}

TEST(FromText, BadEnumsRejected) {
  EXPECT_THROW((void)from_text("isa = SPARC\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("core.vector.isa = SSE\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_text("core.out_of_order = maybe\n"),
               std::invalid_argument);
}

TEST(ParseEnums, RoundTripAllValues) {
  for (VectorIsa v : {VectorIsa::None, VectorIsa::RvvV0_7, VectorIsa::RvvV1_0,
                      VectorIsa::Avx2, VectorIsa::Avx512, VectorIsa::Neon}) {
    EXPECT_EQ(parse_vector_isa(to_string(v)), v);
  }
  for (Isa i : {Isa::Rv64gcv, Isa::Rv64gc, Isa::X86_64, Isa::Armv8}) {
    EXPECT_EQ(parse_isa(to_string(i)), i);
  }
}

TEST(FromText, DuplicateScalarKeyRejectedWithBothLines) {
  try {
    (void)from_text("name = x\ncores = 4\n\ncores = 8\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate key 'cores'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(FromText, RepeatedCacheLinesAreLevelsNotDuplicates) {
  const MachineModel m = from_text(
      "cache = L1D 32768 8 64 1 4\ncache = L2 262144 16 64 4 12\n");
  EXPECT_EQ(m.caches.size(), 2u);
}

TEST(ParseMachine, RecordsTheLineOfEveryKey) {
  const ParsedMachine pm = parse_machine(
      "# header comment\n"
      "name = x\n"
      "core.clock_ghz = 2.0\n"
      "\n"
      "cache = L1D 32768 8 64 1 4\n"
      "cache = L2 262144 16 64 4 12\n"
      "memory.channels = 8\n");
  EXPECT_EQ(pm.line_of("name"), 2);
  EXPECT_EQ(pm.line_of("core.clock_ghz"), 3);
  EXPECT_EQ(pm.line_of("cache[0]"), 5);
  EXPECT_EQ(pm.line_of("cache[1]"), 6);
  EXPECT_EQ(pm.line_of("memory.channels"), 7);
  EXPECT_EQ(pm.line_of("cores"), 0);  // defaulted: no source line
}

TEST(ParseMachine, CollectsLintDisableDirectives) {
  const ParsedMachine pm = parse_machine(
      "# rvhpc-lint: disable=A001,A013-inorder-deep-mlp\n"
      "name = x\n"
      "# a plain comment\n"
      "# rvhpc-lint: disable=A010\n");
  ASSERT_EQ(pm.suppressed_rules.size(), 3u);
  EXPECT_EQ(pm.suppressed_rules[0], "A001");
  EXPECT_EQ(pm.suppressed_rules[1], "A013-inorder-deep-mlp");
  EXPECT_EQ(pm.suppressed_rules[2], "A010");
}

TEST(ReadMachine, WorksOverAStream) {
  std::istringstream in(to_text(machine(MachineId::Sg2044)));
  const MachineModel m = read_machine(in);
  EXPECT_EQ(m.name, "sg2044");
  EXPECT_EQ(m.memory.controllers, 32);
}

}  // namespace
}  // namespace rvhpc::arch
