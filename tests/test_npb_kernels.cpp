// Tests for the NPB kernel implementations (IS, EP, CG, MG, FT):
// correctness invariants and thread-count independence.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"

namespace rvhpc::npb {
namespace {

// ---- IS ---------------------------------------------------------------------

TEST(Is, VerifiesAtClassS) {
  const auto r = is::run(ProblemClass::S, 2);
  EXPECT_TRUE(r.verified) << r.verification;
  EXPECT_GT(r.mops, 0.0);
}

TEST(Is, KeysAreDeterministicAndInRange) {
  const auto keys = is::generate_keys(ProblemClass::S);
  const auto again = is::generate_keys(ProblemClass::S);
  EXPECT_EQ(keys, again);
  const auto g = is::geometry(ProblemClass::S);
  EXPECT_EQ(keys.size(), 1u << g.log2_keys);
  for (std::int32_t k : keys) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 1 << g.log2_max_key);
  }
}

TEST(Is, KeyDistributionIsHumpShaped) {
  // Average of four uniforms: mass concentrates mid-range.
  const auto keys = is::generate_keys(ProblemClass::S);
  const std::int32_t max_key = 1 << is::geometry(ProblemClass::S).log2_max_key;
  std::size_t mid = 0;
  for (std::int32_t k : keys) {
    if (k > max_key / 4 && k < 3 * max_key / 4) ++mid;
  }
  EXPECT_GT(static_cast<double>(mid) / static_cast<double>(keys.size()), 0.8);
}

TEST(Is, RanksBitIdenticalAcrossThreadCounts) {
  std::vector<std::int32_t> r1, r2;
  is::run(ProblemClass::S, 1, &r1);
  is::run(ProblemClass::S, 2, &r2);
  EXPECT_EQ(r1, r2);
}

class IsClasses : public ::testing::TestWithParam<ProblemClass> {};
INSTANTIATE_TEST_SUITE_P(SmallClasses, IsClasses,
                         ::testing::Values(ProblemClass::S, ProblemClass::W),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST_P(IsClasses, Verifies) {
  EXPECT_TRUE(is::run(GetParam(), 2).verified);
}

TEST(Is, BucketedAlgorithmMatchesFlat) {
  // NPB's production bucketed ranking must produce the identical rank
  // array to the flat histogram path, at any thread count.
  std::vector<std::int32_t> flat, bucketed1, bucketed2;
  is::run(ProblemClass::S, 2, &flat, is::IsAlgorithm::FlatHistogram);
  is::run(ProblemClass::S, 1, &bucketed1, is::IsAlgorithm::Bucketed);
  is::run(ProblemClass::S, 2, &bucketed2, is::IsAlgorithm::Bucketed);
  EXPECT_EQ(flat, bucketed1);
  EXPECT_EQ(flat, bucketed2);
}

TEST(Is, BucketedAlgorithmVerifies) {
  const auto r =
      is::run(ProblemClass::W, 2, nullptr, is::IsAlgorithm::Bucketed);
  EXPECT_TRUE(r.verified) << r.verification;
}

// ---- EP ---------------------------------------------------------------------

TEST(Ep, VerifiesAtClassS) {
  const auto r = ep::run(ProblemClass::S, 2);
  EXPECT_TRUE(r.verified) << r.verification;
}

TEST(Ep, BitIdenticalAcrossThreadCounts) {
  ep::EpOutputs a, b;
  ep::run(ProblemClass::S, 1, &a);
  ep::run(ProblemClass::S, 2, &b);
  EXPECT_EQ(a.sx, b.sx);
  EXPECT_EQ(a.sy, b.sy);
  EXPECT_EQ(a.accepted, b.accepted);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.counts[i], b.counts[i]);
}

TEST(Ep, AnnulusCountsDecaySteeply) {
  ep::EpOutputs out;
  ep::run(ProblemClass::S, 2, &out);
  // Gaussian tail: each annulus holds far fewer than the previous.
  EXPECT_GT(out.counts[0], out.counts[1]);
  EXPECT_GT(out.counts[1], out.counts[2]);
  EXPECT_GT(out.counts[2], out.counts[3]);
  // And counts sum to the accepted total.
  const double total = std::accumulate(out.counts, out.counts + 10, 0.0);
  EXPECT_EQ(total, static_cast<double>(out.accepted));
}

TEST(Ep, AcceptanceRateIsPiOverFour) {
  ep::EpOutputs out;
  ep::run(ProblemClass::S, 2, &out);
  const double pairs = std::pow(2.0, ep::log2_pairs(ProblemClass::S));
  EXPECT_NEAR(out.accepted / pairs, 3.14159265 / 4.0, 2e-3);
}

// ---- CG ---------------------------------------------------------------------

TEST(Cg, VerifiesAtClassS) {
  const auto r = cg::run(ProblemClass::S, 2);
  EXPECT_TRUE(r.verified) << r.verification;
}

TEST(Cg, MatrixIsSymmetric) {
  const auto a = cg::make_matrix(ProblemClass::S);
  // Dense mirror for the small class-S matrix.
  std::vector<double> dense(static_cast<std::size_t>(a.n) * a.n, 0.0);
  for (int i = 0; i < a.n; ++i) {
    for (auto k = a.row_begin[static_cast<std::size_t>(i)];
         k < a.row_begin[static_cast<std::size_t>(i) + 1]; ++k) {
      dense[static_cast<std::size_t>(i) * a.n +
            a.col[static_cast<std::size_t>(k)]] =
          a.val[static_cast<std::size_t>(k)];
    }
  }
  for (int i = 0; i < a.n; i += 7) {
    for (int j = 0; j < a.n; j += 13) {
      EXPECT_NEAR(dense[static_cast<std::size_t>(i) * a.n + j],
                  dense[static_cast<std::size_t>(j) * a.n + i], 1e-12);
    }
  }
}

TEST(Cg, MatrixDiagonalIsPositive) {
  const auto a = cg::make_matrix(ProblemClass::S);
  for (int i = 0; i < a.n; ++i) {
    double diag = 0.0;
    for (auto k = a.row_begin[static_cast<std::size_t>(i)];
         k < a.row_begin[static_cast<std::size_t>(i) + 1]; ++k) {
      if (a.col[static_cast<std::size_t>(k)] == i) {
        diag = a.val[static_cast<std::size_t>(k)];
      }
    }
    EXPECT_GE(diag, 1.0) << "row " << i;  // identity shift + PSD sum
  }
}

TEST(Cg, SpmvMatchesDenseReference) {
  const auto a = cg::make_matrix(ProblemClass::S);
  std::vector<double> x(static_cast<std::size_t>(a.n));
  for (int i = 0; i < a.n; ++i) {
    x[static_cast<std::size_t>(i)] = std::sin(i * 0.01);
  }
  std::vector<double> y(static_cast<std::size_t>(a.n));
  cg::spmv(a, x, y, 2);
  for (int i = 0; i < a.n; i += 97) {
    double ref = 0.0;
    for (auto k = a.row_begin[static_cast<std::size_t>(i)];
         k < a.row_begin[static_cast<std::size_t>(i) + 1]; ++k) {
      ref += a.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], ref, 1e-12);
  }
}

TEST(Cg, SpmvUnrollVariantsAgree) {
  // The NPB alternative inner loops (unroll x2 / x8, the §6 ablation
  // subjects) must compute the same product up to reassociation rounding.
  const auto a = cg::make_matrix(ProblemClass::S);
  std::vector<double> x(static_cast<std::size_t>(a.n));
  for (int i = 0; i < a.n; ++i) {
    x[static_cast<std::size_t>(i)] = std::cos(i * 0.013);
  }
  std::vector<double> y0(static_cast<std::size_t>(a.n));
  std::vector<double> y2(static_cast<std::size_t>(a.n));
  std::vector<double> y8(static_cast<std::size_t>(a.n));
  cg::spmv(a, x, y0, 2, cg::SpmvVariant::Default);
  cg::spmv(a, x, y2, 2, cg::SpmvVariant::Unroll2);
  cg::spmv(a, x, y8, 2, cg::SpmvVariant::Unroll8);
  for (int i = 0; i < a.n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    EXPECT_NEAR(y2[ii], y0[ii], 1e-11 * (1.0 + std::fabs(y0[ii])));
    EXPECT_NEAR(y8[ii], y0[ii], 1e-11 * (1.0 + std::fabs(y0[ii])));
  }
}

TEST(Cg, QuadraticFormIsPositive) {
  // SPD check: x^T A x > 0 for a few pseudo-random x.
  const auto a = cg::make_matrix(ProblemClass::S);
  NpbRandom rng;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(a.n));
    for (auto& v : x) v = 2.0 * rng.next() - 1.0;
    std::vector<double> y(static_cast<std::size_t>(a.n));
    cg::spmv(a, x, y, 1);
    double q = 0.0;
    for (int i = 0; i < a.n; ++i) {
      q += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
    }
    EXPECT_GT(q, 0.0);
  }
}

TEST(Cg, ZetaStableAcrossThreadCounts) {
  cg::CgOutputs a, b;
  cg::run(ProblemClass::S, 1, &a);
  cg::run(ProblemClass::S, 2, &b);
  EXPECT_NEAR(a.zeta, b.zeta, 1e-9 * std::fabs(a.zeta));
}

TEST(Cg, ZetaExceedsShift) {
  cg::CgOutputs out;
  cg::run(ProblemClass::S, 2, &out);
  EXPECT_GT(out.zeta, cg::params(ProblemClass::S).shift);
  EXPECT_LT(out.zeta, cg::params(ProblemClass::S).shift + 10.0);
}

// ---- MG ---------------------------------------------------------------------

TEST(Mg, VerifiesAtClassS) {
  const auto r = mg::run(ProblemClass::S, 2);
  EXPECT_TRUE(r.verified) << r.verification;
}

TEST(Mg, GridWrapsPeriodically) {
  mg::Grid g(8);
  g.at(0, 0, 0) = 5.0;
  EXPECT_DOUBLE_EQ(g.at(8, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.at(-8, 8, -8), 5.0);
  EXPECT_THROW(mg::Grid(12), std::invalid_argument);  // not a power of two
  EXPECT_THROW(mg::Grid(2), std::invalid_argument);
}

TEST(Mg, ResidualStencilAnnihilatesConstants) {
  // The NPB residual operator has zero row sum: A(const) = 0, so
  // r = v - A u = v for constant u.
  mg::Grid u(16), v(16), r(16);
  u.fill(3.7);
  v.fill(0.25);
  mg::residual(u, v, r, 2);
  for (int i = 0; i < 16; i += 5) {
    EXPECT_NEAR(r.at(i, i % 8, (i * 3) % 16), 0.25, 1e-12);
  }
}

TEST(Mg, VcycleContractsResidual) {
  mg::MgOutputs out;
  mg::run(ProblemClass::S, 2, &out);
  EXPECT_LT(out.final_rnorm, out.initial_rnorm * 0.15);
}

TEST(Mg, ResidualNormStableAcrossThreadCounts) {
  mg::MgOutputs a, b;
  mg::run(ProblemClass::S, 1, &a);
  mg::run(ProblemClass::S, 2, &b);
  EXPECT_NEAR(a.final_rnorm, b.final_rnorm, 1e-12);
}

TEST(Mg, SmootherAloneReducesTheResidual) {
  // One smoothing step on the finest grid must already shrink ||v - Au||:
  // the NPB smoother coefficients approximate the operator inverse.
  mg::Grid u(16), v(16), r(16);
  NpbRandom rng;
  for (int s = 0; s < 8; ++s) {
    const int i = static_cast<int>(rng.next() * 16) % 16;
    const int j = static_cast<int>(rng.next() * 16) % 16;
    const int k = static_cast<int>(rng.next() * 16) % 16;
    v.at(i, j, k) = s < 4 ? 1.0 : -1.0;
  }
  mg::residual(u, v, r, 2);
  const double before = mg::l2_norm(r, 2);
  mg::smooth(u, r, 2, ProblemClass::S);
  mg::residual(u, v, r, 2);
  EXPECT_LT(mg::l2_norm(r, 2), before);
}

TEST(Mg, RestrictionPreservesConstants) {
  mg::Grid fine(16), coarse(8);
  fine.fill(2.0);
  mg::restrict_grid(fine, coarse, 2);
  // Full weighting of a constant: 0.5 + 0.25*6/2 + 0.125*12/4 + 0.0625*8/8
  // = 0.5 + 0.75 + 0.375 + 0.0625 times 2... the weights sum to 1.6875.
  for (int i = 0; i < 8; i += 3) {
    EXPECT_NEAR(coarse.at(i, 0, i), 2.0 * 1.6875, 1e-12);
  }
}

TEST(Mg, InterpolationOfConstantAddsConstant) {
  mg::Grid coarse(8), fine(16);
  coarse.fill(1.0);
  fine.fill(0.0);
  mg::interpolate_add(coarse, fine, 2);
  for (int i = 0; i < 16; i += 7) {
    EXPECT_NEAR(fine.at(i, i, i), 1.0, 1e-12);
  }
}

// ---- FT ---------------------------------------------------------------------

TEST(Ft, VerifiesAtClassS) {
  const auto r = ft::run(ProblemClass::S, 2);
  EXPECT_TRUE(r.verified) << r.verification;
}

TEST(Ft, Fft1dMatchesNaiveDft) {
  constexpr int kN = 16;
  std::vector<ft::Complex> data(kN), ref(kN);
  for (int i = 0; i < kN; ++i) {
    data[static_cast<std::size_t>(i)] = {std::cos(0.3 * i), std::sin(0.7 * i)};
  }
  for (int k = 0; k < kN; ++k) {
    ft::Complex sum{0.0, 0.0};
    for (int t = 0; t < kN; ++t) {
      const double ang = -2.0 * 3.14159265358979323846 * k * t / kN;
      sum += data[static_cast<std::size_t>(t)] *
             ft::Complex{std::cos(ang), std::sin(ang)};
    }
    ref[static_cast<std::size_t>(k)] = sum;
  }
  ft::fft1d(data.data(), kN, -1);
  for (int k = 0; k < kN; ++k) {
    EXPECT_NEAR(std::abs(data[static_cast<std::size_t>(k)] -
                         ref[static_cast<std::size_t>(k)]),
                0.0, 1e-10);
  }
}

TEST(Ft, Fft1dRoundTrip) {
  constexpr int kN = 64;
  std::vector<ft::Complex> data(kN), orig(kN);
  for (int i = 0; i < kN; ++i) {
    orig[static_cast<std::size_t>(i)] = {std::sin(i * 0.1), std::cos(i * 0.2)};
  }
  data = orig;
  ft::fft1d(data.data(), kN, -1);
  ft::fft1d(data.data(), kN, +1);
  for (int i = 0; i < kN; ++i) {
    EXPECT_NEAR(std::abs(data[static_cast<std::size_t>(i)] /
                             static_cast<double>(kN) -
                         orig[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

TEST(Ft, EvolutionMatchesAnalyticDiffusion) {
  // Spectral-method ground truth: a single Fourier mode must decay by
  // exactly exp(-4 alpha pi^2 |k|^2 t) under the FT evolution.  We verify
  // the machinery (fft3d forward + frequency indexing) by planting one
  // mode and checking its spectrum lands in a single bin.
  const ft::Params p = ft::params(ProblemClass::S);
  const std::size_t n =
      static_cast<std::size_t>(p.nx) * p.ny * static_cast<std::size_t>(p.nz);
  std::vector<ft::Complex> u(n);
  const int kx = 3, ky = 5, kz = 2;
  for (int z = 0; z < p.nz; ++z) {
    for (int y = 0; y < p.ny; ++y) {
      for (int x = 0; x < p.nx; ++x) {
        const double phase =
            2.0 * 3.14159265358979323846 *
            (static_cast<double>(kx) * x / p.nx + static_cast<double>(ky) * y / p.ny +
             static_cast<double>(kz) * z / p.nz);
        u[(static_cast<std::size_t>(z) * p.ny + static_cast<std::size_t>(y)) *
              p.nx +
          static_cast<std::size_t>(x)] = {std::cos(phase), std::sin(phase)};
      }
    }
  }
  ft::fft3d(u, p, -1, 2);
  // All the energy must sit in bin (kx, ky, kz).
  const std::size_t hot =
      (static_cast<std::size_t>(kz) * p.ny + static_cast<std::size_t>(ky)) *
          p.nx +
      static_cast<std::size_t>(kx);
  double total = 0.0, at_hot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::norm(u[i]);
    if (i == hot) at_hot = std::norm(u[i]);
  }
  EXPECT_GT(at_hot / total, 0.999);
}

TEST(Ft, ChecksumsStableAcrossThreadCounts) {
  ft::FtOutputs a, b;
  ft::run(ProblemClass::S, 1, &a);
  ft::run(ProblemClass::S, 2, &b);
  ASSERT_EQ(a.checksums.size(), b.checksums.size());
  for (std::size_t i = 0; i < a.checksums.size(); ++i) {
    EXPECT_NEAR(std::abs(a.checksums[i] - b.checksums[i]), 0.0, 1e-9);
  }
}

TEST(Ft, ChecksumsEvolveSmoothly) {
  // The diffusion evolution damps high frequencies: successive checksums
  // change, but remain the same order of magnitude.
  ft::FtOutputs out;
  ft::run(ProblemClass::S, 2, &out);
  ASSERT_GE(out.checksums.size(), 2u);
  for (std::size_t i = 1; i < out.checksums.size(); ++i) {
    EXPECT_NE(out.checksums[i], out.checksums[i - 1]);
    EXPECT_NEAR(std::abs(out.checksums[i]) / std::abs(out.checksums[i - 1]),
                1.0, 0.5);
  }
}

}  // namespace
}  // namespace rvhpc::npb
