// Tests for the BT / SP / LU pseudo-applications and their shared
// numerical substrate (5x5 blocks, line solvers, fields).

#include <gtest/gtest.h>

#include <cmath>

#include "npb/bt.hpp"
#include "npb/lu.hpp"
#include "npb/sp.hpp"

namespace rvhpc::npb {
namespace {

using app::Block55;
using app::Field5;
using app::Vec5;

Block55 test_block() {
  Block55 b;
  // Diagonally dominant, asymmetric.
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      b.at(r, c) = r == c ? 6.0 + r : 0.3 / (1 + r + 2 * c);
    }
  }
  return b;
}

TEST(Block55, IdentityAndScale) {
  const Block55 i = Block55::identity();
  EXPECT_DOUBLE_EQ(i.at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(i.at(2, 3), 0.0);
  const Block55 s = Block55::scaled(i, 2.5);
  EXPECT_DOUBLE_EQ(s.at(4, 4), 2.5);
}

TEST(Block55, MatVecAgainstManualSum) {
  const Block55 b = test_block();
  const Vec5 v{1, 2, 3, 4, 5};
  const Vec5 out = b.mul(v);
  for (int r = 0; r < 5; ++r) {
    double ref = 0.0;
    for (int c = 0; c < 5; ++c) ref += b.at(r, c) * v[static_cast<std::size_t>(c)];
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)], ref);
  }
}

TEST(Block55, LuSolveRecoversKnownSolution) {
  const Block55 a = test_block();
  const Vec5 x{0.5, -1.0, 2.0, 0.25, -0.75};
  const Vec5 b = a.mul(x);
  Block55 f = a;
  ASSERT_TRUE(f.lu_factor());
  const Vec5 solved = f.lu_solve(b);
  for (int c = 0; c < 5; ++c) {
    EXPECT_NEAR(solved[static_cast<std::size_t>(c)],
                x[static_cast<std::size_t>(c)], 1e-12);
  }
}

TEST(Block55, LuSolveMatrixRhs) {
  const Block55 a = test_block();
  const Block55 x = app::coupling_matrix();
  const Block55 b = a.mul(x);
  Block55 f = a;
  ASSERT_TRUE(f.lu_factor());
  const Block55 solved = f.lu_solve(b);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(solved.at(r, c), x.at(r, c), 1e-12);
    }
  }
}

TEST(Block55, SingularPivotDetected) {
  Block55 z;  // all zeros
  EXPECT_FALSE(z.lu_factor());
}

TEST(CouplingMatrix, SymmetricDiagonallyDominant) {
  const Block55& k = app::coupling_matrix();
  for (int r = 0; r < 5; ++r) {
    double off = 0.0;
    for (int c = 0; c < 5; ++c) {
      EXPECT_DOUBLE_EQ(k.at(r, c), k.at(c, r));
      if (r != c) off += std::fabs(k.at(r, c));
    }
    EXPECT_GT(k.at(r, r), off);
  }
}

TEST(BlockTridiag, SolvesAgainstForwardMultiply) {
  constexpr int kN = 9;
  std::vector<Block55> sub(kN), diag(kN), sup(kN);
  std::vector<Vec5> x(kN), rhs(kN);
  for (int i = 0; i < kN; ++i) {
    diag[static_cast<std::size_t>(i)] = test_block();
    sub[static_cast<std::size_t>(i)] =
        Block55::scaled(app::coupling_matrix(), -0.2);
    sup[static_cast<std::size_t>(i)] =
        Block55::scaled(app::coupling_matrix(), -0.3);
    for (int c = 0; c < 5; ++c) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)] =
          std::sin(i + 0.37 * c);
    }
  }
  // rhs = A x.
  for (int i = 0; i < kN; ++i) {
    Vec5 v = diag[static_cast<std::size_t>(i)].mul(x[static_cast<std::size_t>(i)]);
    if (i > 0) {
      const Vec5 t = sub[static_cast<std::size_t>(i)].mul(x[static_cast<std::size_t>(i - 1)]);
      for (int c = 0; c < 5; ++c) v[static_cast<std::size_t>(c)] += t[static_cast<std::size_t>(c)];
    }
    if (i + 1 < kN) {
      const Vec5 t = sup[static_cast<std::size_t>(i)].mul(x[static_cast<std::size_t>(i + 1)]);
      for (int c = 0; c < 5; ++c) v[static_cast<std::size_t>(c)] += t[static_cast<std::size_t>(c)];
    }
    rhs[static_cast<std::size_t>(i)] = v;
  }
  ASSERT_TRUE(app::block_tridiag_solve(sub, diag, sup, rhs));
  for (int i = 0; i < kN; ++i) {
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(rhs[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)],
                  x[static_cast<std::size_t>(i)][static_cast<std::size_t>(c)],
                  1e-10);
    }
  }
}

TEST(PentaSolve, SolvesAgainstForwardMultiply) {
  constexpr int kN = 17;
  const double ce2 = 0.05, ce1 = -0.4, cd = 2.0, cf1 = -0.3, cf2 = 0.04;
  std::vector<double> x(kN), rhs(kN);
  for (int i = 0; i < kN; ++i) x[static_cast<std::size_t>(i)] = std::cos(0.7 * i);
  for (int i = 0; i < kN; ++i) {
    double v = cd * x[static_cast<std::size_t>(i)];
    if (i >= 1) v += ce1 * x[static_cast<std::size_t>(i - 1)];
    if (i >= 2) v += ce2 * x[static_cast<std::size_t>(i - 2)];
    if (i + 1 < kN) v += cf1 * x[static_cast<std::size_t>(i + 1)];
    if (i + 2 < kN) v += cf2 * x[static_cast<std::size_t>(i + 2)];
    rhs[static_cast<std::size_t>(i)] = v;
  }
  std::vector<double> e2(kN, ce2), e1(kN, ce1), d(kN, cd), f1(kN, cf1),
      f2(kN, cf2);
  ASSERT_TRUE(app::penta_solve(e2, e1, d, f1, f2, rhs));
  for (int i = 0; i < kN; ++i) {
    EXPECT_NEAR(rhs[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)],
                1e-11);
  }
}

TEST(Field5, GhostCellsAreDirichletZero) {
  Field5 f(8);
  f.init_smooth();
  const Vec5 ghost = f.get(-1, 0, 0);
  for (double v : ghost) EXPECT_DOUBLE_EQ(v, 0.0);
  const Vec5 ghost2 = f.get(0, 8, 0);
  for (double v : ghost2) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Field5, SetGetRoundTrip) {
  Field5 f(4);
  const Vec5 v{1, 2, 3, 4, 5};
  f.set(1, 2, 3, v);
  EXPECT_EQ(f.get(1, 2, 3), v);
}

TEST(Field5, SmoothInitHasInteriorMaximum) {
  Field5 f(9);
  f.init_smooth();
  const double centre = f.get(4, 4, 4)[0];
  EXPECT_GT(centre, f.get(0, 0, 0)[0]);
  EXPECT_GT(f.energy(2), 0.0);
}

// ---- full application runs -------------------------------------------------

class AppRuns : public ::testing::TestWithParam<ProblemClass> {};
INSTANTIATE_TEST_SUITE_P(SmallClasses, AppRuns,
                         ::testing::Values(ProblemClass::S, ProblemClass::W),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST_P(AppRuns, BtVerifies) {
  const auto r = bt::run(GetParam(), 2);
  EXPECT_TRUE(r.verified) << r.verification;
}

TEST_P(AppRuns, SpVerifies) {
  const auto r = sp::run(GetParam(), 2);
  EXPECT_TRUE(r.verified) << r.verification;
}

TEST_P(AppRuns, LuVerifies) {
  const auto r = lu::run(GetParam(), 2);
  EXPECT_TRUE(r.verified) << r.verification;
}

TEST(Bt, EnergyDecaysUnderDiffusion) {
  bt::BtOutputs out;
  bt::run(ProblemClass::S, 2, &out);
  EXPECT_LT(out.final_energy, out.initial_energy);
  EXPECT_GT(out.final_energy, 0.0);
  EXPECT_LT(out.max_line_residual, 1e-10);
}

TEST(Sp, EnergyDecaysUnderDiffusion) {
  sp::SpOutputs out;
  sp::run(ProblemClass::S, 2, &out);
  EXPECT_LT(out.final_energy, out.initial_energy);
  EXPECT_LT(out.max_line_residual, 1e-10);
}

TEST(Lu, SsorContractsResidual) {
  lu::LuOutputs out;
  lu::run(ProblemClass::S, 2, &out);
  EXPECT_LT(out.last_residual, out.first_residual * 0.05);
  EXPECT_LT(out.final_energy, out.initial_energy);
}

TEST(Apps, ChecksumsStableAcrossThreadCounts) {
  const double bt1 = bt::run(ProblemClass::S, 1).checksum;
  const double bt2 = bt::run(ProblemClass::S, 2).checksum;
  EXPECT_NEAR(bt1, bt2, 1e-9 * std::max(1.0, std::fabs(bt1)));
  const double sp1 = sp::run(ProblemClass::S, 1).checksum;
  const double sp2 = sp::run(ProblemClass::S, 2).checksum;
  EXPECT_NEAR(sp1, sp2, 1e-9 * std::max(1.0, std::fabs(sp1)));
}

TEST(Apps, SolversDissipateAtDifferentRates) {
  // Three solvers, same PDE, different discretisations: their end states
  // are close in energy but not identical.
  bt::BtOutputs b;
  sp::SpOutputs s;
  lu::LuOutputs l;
  bt::run(ProblemClass::S, 2, &b);
  sp::run(ProblemClass::S, 2, &s);
  lu::run(ProblemClass::S, 2, &l);
  EXPECT_NE(b.final_energy, s.final_energy);
  EXPECT_NEAR(b.final_energy / s.final_energy, 1.0, 0.5);
  EXPECT_NEAR(b.final_energy / l.final_energy, 1.0, 0.8);
}

}  // namespace
}  // namespace rvhpc::npb
