// Cross-module integration tests: the analytic model (rvhpc::model), the
// trace-driven simulator (rvhpc::memsim) and the real benchmark codes
// (rvhpc::npb, rvhpc::hpc) describe the same workloads — they must agree
// on each kernel's character.

#include <gtest/gtest.h>

#include <cmath>

#include "arch/registry.hpp"
#include "memsim/profile.hpp"
#include "model/sweep.hpp"
#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"
#include "stream/stream.hpp"

namespace rvhpc {
namespace {

using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

memsim::StallReport simulate(Kernel k) {
  memsim::ProfileConfig cfg;
  cfg.cores = 26;
  cfg.ops_per_core = 50000;
  return memsim::simulate_stalls(arch::machine(MachineId::Xeon8170), k, cfg);
}

TEST(ModelVsMemsim, AgreeOnTheBandwidthKernel) {
  // Model: MG at full Xeon chip is stream-bandwidth bound.
  const auto p = model::at_cores(MachineId::Xeon8170, Kernel::MG,
                                 ProblemClass::C, 26);
  EXPECT_EQ(p.breakdown.dominant, model::Bottleneck::StreamBandwidth);
  // Simulator: MG saturates the DRAM windows.
  EXPECT_GT(simulate(Kernel::MG).ddr_bw_bound_pct, 50.0);
}

TEST(ModelVsMemsim, AgreeOnTheComputeKernel) {
  const auto p = model::at_cores(MachineId::Xeon8170, Kernel::EP,
                                 ProblemClass::C, 26);
  EXPECT_EQ(p.breakdown.dominant, model::Bottleneck::Compute);
  const auto r = simulate(Kernel::EP);
  EXPECT_LT(r.cache_stall_pct + r.ddr_stall_pct, 15.0);
}

TEST(ModelVsMemsim, AgreeOnTheLatencyKernel) {
  const auto p = model::at_cores(MachineId::Xeon8170, Kernel::IS,
                                 ProblemClass::C, 26);
  const auto& b = p.breakdown;
  EXPECT_GT(b.latency_s, b.compute_s);
  const auto r = simulate(Kernel::IS);
  EXPECT_GT(r.cache_stall_pct, 20.0);  // cache-latency dominated there too
}

TEST(ModelVsMemsim, KernelsRankTheSameByMemoryIntensity) {
  // Total memory-stall share in the simulator must rank MG far above EP,
  // matching the signatures' streamed-bytes ordering.  (Raw DRAM request
  // counts are unusable for EP: its residual traffic is warmup cold
  // misses, not steady-state behaviour.)
  const auto mg = simulate(Kernel::MG);
  const auto ep = simulate(Kernel::EP);
  EXPECT_GT(mg.ddr_stall_pct + mg.ddr_bw_bound_pct,
            3.0 * (ep.ddr_stall_pct + ep.ddr_bw_bound_pct + 1.0));
  const auto mg_sig = model::signature(Kernel::MG, ProblemClass::C);
  const auto ep_sig = model::signature(Kernel::EP, ProblemClass::C);
  EXPECT_GT(mg_sig.streamed_bytes_per_op, ep_sig.streamed_bytes_per_op);
}

TEST(ModelVsNpb, RealKernelRatesRankLikeSignatures) {
  // The real class-S codes on this host should at least order the
  // per-op heaviness the same way the signatures do: EP's op is far more
  // expensive than IS's.
  const auto is_run = npb::is::run(ProblemClass::S, 2);
  const auto ep_run = npb::ep::run(ProblemClass::S, 2);
  ASSERT_TRUE(is_run.verified);
  ASSERT_TRUE(ep_run.verified);
  EXPECT_GT(is_run.mops, 3.0 * ep_run.mops);
  const auto is_sig = model::signature(Kernel::IS, ProblemClass::S);
  const auto ep_sig = model::signature(Kernel::EP, ProblemClass::S);
  EXPECT_GT(ep_sig.cycles_per_op, 3.0 * is_sig.cycles_per_op);
}

TEST(ModelVsStream, HostCopyBandwidthIsPlausible) {
  // Sanity tie between the real STREAM and the model's notion of
  // bandwidth: the host sustains something strictly positive and the
  // verified flag holds; no cross-machine claim is made.
  stream::StreamConfig cfg;
  cfg.elements = 1 << 21;
  cfg.repetitions = 3;
  cfg.threads = 2;
  const auto results = stream::run(cfg);
  EXPECT_TRUE(results[0].verified);
  EXPECT_GT(results[0].best_gbs, 0.5);
}

TEST(EndToEnd, PaperHeadlineSurvivesTheWholePipeline) {
  // The abstract in one test: "up to 4.91x greater performance than the
  // SG2042 over 64 cores" (we accept 3.5-7x), "significantly closing the
  // performance gap with other architectures, especially for
  // compute-bound workloads".
  double best = 0.0;
  for (Kernel k : model::npb_kernels()) {
    best = std::max(best, model::times_faster(MachineId::Sg2044,
                                              MachineId::Sg2042, k,
                                              ProblemClass::C, 64));
  }
  EXPECT_GT(best, 3.5);
  EXPECT_LT(best, 7.0);
  // Compute-bound gap at full chip: SG2044 within 2x of the EPYC on EP.
  const double ep_gap = model::times_faster(MachineId::Epyc7742,
                                            MachineId::Sg2044, Kernel::EP,
                                            ProblemClass::C, 64);
  EXPECT_LT(ep_gap, 2.0);
}

}  // namespace
}  // namespace rvhpc
