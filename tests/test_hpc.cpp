// Tests for rvhpc::hpc — the mini-HPL and mini-HPCG future-work codes —
// and their model-side signatures.

#include <gtest/gtest.h>

#include <cmath>

#include "arch/registry.hpp"
#include "hpc/hpcg.hpp"
#include "hpc/hpl.hpp"
#include "model/sweep.hpp"

namespace rvhpc {
namespace {

TEST(Hpl, SolvesToHplTolerance) {
  hpc::hpl::HplConfig cfg;
  cfg.n = 192;
  cfg.threads = 2;
  const auto r = hpc::hpl::run(cfg);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.scaled_residual, 16.0);  // the official HPL criterion
  EXPECT_GT(r.gflops, 0.0);
}

TEST(Hpl, BlockSizeDoesNotChangeTheAnswer) {
  hpc::hpl::HplConfig a;
  a.n = 128;
  a.block = 16;
  const auto ra = hpc::hpl::run(a);
  hpc::hpl::HplConfig b;
  b.n = 128;
  b.block = 64;
  const auto rb = hpc::hpl::run(b);
  EXPECT_TRUE(ra.verified);
  EXPECT_TRUE(rb.verified);
}

TEST(Hpl, ThreadCountDoesNotChangeTheAnswer) {
  hpc::hpl::HplConfig a;
  a.n = 128;
  a.threads = 1;
  hpc::hpl::HplConfig b = a;
  b.threads = 2;
  EXPECT_TRUE(hpc::hpl::run(a).verified);
  EXPECT_TRUE(hpc::hpl::run(b).verified);
}

TEST(Hpl, OddSizesAgainstBlocking) {
  hpc::hpl::HplConfig cfg;
  cfg.n = 97;  // not a multiple of the block
  cfg.block = 32;
  EXPECT_TRUE(hpc::hpl::run(cfg).verified);
}

TEST(Hpcg, ConvergesWithinBudget) {
  hpc::hpcg::HpcgConfig cfg;
  cfg.nx = 16;
  cfg.threads = 2;
  const auto r = hpc::hpcg::run(cfg);
  EXPECT_TRUE(r.verified);
  EXPECT_LT(r.final_relative_residual, cfg.tolerance);
}

TEST(Hpcg, PreconditionerAccelerates) {
  hpc::hpcg::HpcgConfig cfg;
  cfg.nx = 16;
  const auto r = hpc::hpcg::run(cfg);
  // SymGS must cut the iteration count well below plain CG (>= 1.5x).
  EXPECT_LE(r.iterations * 3, r.unpreconditioned_iterations * 2);
}

TEST(Hpcg, DeterministicIterationCount) {
  hpc::hpcg::HpcgConfig cfg;
  cfg.nx = 16;
  const auto a = hpc::hpcg::run(cfg);
  cfg.threads = 2;
  const auto b = hpc::hpcg::run(cfg);
  EXPECT_EQ(a.iterations, b.iterations);
}

// ---- model-side predictions ---------------------------------------------

TEST(FutureWorkModel, HplIsComputeBoundEverywhere) {
  for (arch::MachineId id : arch::hpc_machines()) {
    const auto& m = arch::machine(id);
    const auto p = model::at_cores(id, model::Kernel::Hpl,
                                   model::ProblemClass::C, m.cores);
    ASSERT_TRUE(p.ran) << m.name;
    EXPECT_EQ(p.breakdown.dominant, model::Bottleneck::Compute) << m.name;
  }
}

TEST(FutureWorkModel, HpcgIsMemoryBoundEverywhere) {
  for (arch::MachineId id : arch::hpc_machines()) {
    const auto& m = arch::machine(id);
    const auto p = model::at_cores(id, model::Kernel::Hpcg,
                                   model::ProblemClass::C, m.cores);
    ASSERT_TRUE(p.ran) << m.name;
    EXPECT_NE(p.breakdown.dominant, model::Bottleneck::Compute) << m.name;
  }
}

TEST(FutureWorkModel, Sg2044BeatsSg2042HarderOnHpcgThanHpl) {
  // HPCG stresses exactly the subsystem SOPHGO fixed.
  const double hpcg = model::times_faster(arch::MachineId::Sg2044,
                                          arch::MachineId::Sg2042,
                                          model::Kernel::Hpcg,
                                          model::ProblemClass::C, 64);
  const double hpl = model::times_faster(arch::MachineId::Sg2044,
                                         arch::MachineId::Sg2042,
                                         model::Kernel::Hpl,
                                         model::ProblemClass::C, 64);
  EXPECT_GT(hpcg, hpl);
  EXPECT_GT(hpcg, 1.8);
  EXPECT_GT(hpl, 1.0);
}

TEST(FutureWorkModel, ClangTargetsRvv10AndHelpsSlightly) {
  EXPECT_TRUE(model::can_target(model::CompilerId::Clang17,
                                arch::VectorIsa::RvvV1_0));
  EXPECT_TRUE(model::gather_autovec(model::CompilerId::Clang17));
  const auto& sg = arch::machine(arch::MachineId::Sg2044);
  const auto sig = model::signature(model::Kernel::BT, model::ProblemClass::C);
  model::RunConfig gcc{1, {model::CompilerId::Gcc15_2, true},
                       model::ThreadPlacement::OsDefault};
  model::RunConfig llvm{1, {model::CompilerId::Clang17, true},
                        model::ThreadPlacement::OsDefault};
  const double g = predict(sg, sig, gcc).mops;
  const double l = predict(sg, sig, llvm).mops;
  EXPECT_GT(l, g);          // better RVV codegen
  EXPECT_LT(l, g * 1.25);   // but no miracle
}

TEST(FutureWorkModel, SignaturesScaleWithClass) {
  for (model::Kernel k : {model::Kernel::Hpl, model::Kernel::Hpcg}) {
    double prev = 0.0;
    for (auto c : {model::ProblemClass::S, model::ProblemClass::A,
                   model::ProblemClass::C}) {
      const auto s = model::signature(k, c);
      EXPECT_GT(s.total_mop, prev);
      prev = s.total_mop;
    }
  }
}

}  // namespace
}  // namespace rvhpc
