// rvhpc::topo — NUMA/multi-socket topology modeling.
//
// The subsystem's contract (DESIGN.md §15) pivots on one guarantee: a
// flat machine (no topology section) predicts *bit-identically* to the
// pre-topology code on both backends, because cross_traffic() returns a
// zero remote fraction and neither charging branch is taken.  These
// tests pin that guarantee, the serializer's opt-in round-trip, the
// line-numbered structural rejects, the A3xx lint pack, the direction of
// the charge on the new registry machines, and the ThreadPool placement
// gate.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "arch/validate.hpp"
#include "engine/thread_pool.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "obs/trace.hpp"
#include "sim/interval.hpp"
#include "topo/topology.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

topo::Topology dual(double link_bw = 16.0, double latency = 100.0,
                    double coherence = 50.0) {
  topo::Topology t;
  t.domains = {{"s0", 32, 64.0, 60.0, 32.0}, {"s1", 32, 64.0, 60.0, 32.0}};
  t.links = {{"s0", "s1", link_bw, latency, coherence}};
  return t;
}

}  // namespace

// --- value type + cross_traffic ---------------------------------------------

TEST(Topology, FlatByDefault) {
  topo::Topology t;
  EXPECT_TRUE(t.flat());
  EXPECT_EQ(t.total_cores(), 0);
  EXPECT_EQ(t.find("s0"), nullptr);
}

TEST(Topology, StructuralIssuesCatchEveryShape) {
  EXPECT_TRUE(topo::structural_issues(dual()).empty());

  topo::Topology dup = dual();
  dup.domains[1].id = "s0";
  EXPECT_FALSE(topo::structural_issues(dup).empty());

  topo::Topology dangling = dual();
  dangling.links[0].to = "s7";
  EXPECT_FALSE(topo::structural_issues(dangling).empty());

  topo::Topology self_link = dual();
  self_link.links[0].to = "s0";
  EXPECT_FALSE(topo::structural_issues(self_link).empty());

  topo::Topology island = dual();
  island.links.clear();  // two domains, no way between them
  EXPECT_FALSE(topo::structural_issues(island).empty());

  topo::Topology bad_res = dual();
  bad_res.domains[0].dram_bw_gbs = 0.0;
  EXPECT_FALSE(topo::structural_issues(bad_res).empty());
}

TEST(Topology, DomainsSpannedFillsInDeclarationOrder) {
  const topo::Topology t = dual();
  EXPECT_EQ(topo::domains_spanned(t, 1), 1);
  EXPECT_EQ(topo::domains_spanned(t, 32), 1);
  EXPECT_EQ(topo::domains_spanned(t, 33), 2);
  EXPECT_EQ(topo::domains_spanned(t, 64), 2);
  EXPECT_EQ(topo::domains_spanned(t, 9999), 2);  // clamped to all domains
}

TEST(CrossTraffic, FlatAndSingleDomainRunsAreFree) {
  const topo::Topology flat;
  EXPECT_EQ(topo::cross_traffic(flat, 64, 1024.0).remote_fraction, 0.0);

  // A run that fits in one socket never touches the link, whatever its
  // working set: this is the charging side of the bit-identity guarantee.
  const topo::Topology t = dual();
  const topo::CrossTraffic one = topo::cross_traffic(t, 32, 4096.0);
  EXPECT_EQ(one.domains_used, 1);
  EXPECT_EQ(one.remote_fraction, 0.0);
  EXPECT_EQ(one.extra_latency_ns, 0.0);
}

TEST(CrossTraffic, CacheResidentSpanIsFreeLargeSpanIsNot) {
  const topo::Topology t = dual();
  // Working set inside the local LLC slice: span factor 0, nothing remote.
  EXPECT_EQ(topo::cross_traffic(t, 64, 16.0).remote_fraction, 0.0);
  // Far beyond it: the uniform-share bound (0.35 * (1 - 1/2)).
  const topo::CrossTraffic big = topo::cross_traffic(t, 64, 4096.0);
  EXPECT_EQ(big.domains_used, 2);
  EXPECT_NEAR(big.remote_fraction, 0.35 * 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(big.link_bw_gbs, 16.0);
  EXPECT_DOUBLE_EQ(big.extra_latency_ns, 150.0);  // latency + coherence
  // Monotone in the working set between the two regimes.
  EXPECT_LT(topo::cross_traffic(t, 64, 48.0).remote_fraction,
            big.remote_fraction);
  EXPECT_GT(topo::cross_traffic(t, 64, 48.0).remote_fraction, 0.0);
}

TEST(CrossTraffic, UnusableLinksMeanNoCharge) {
  topo::Topology t = dual();
  t.links[0].bandwidth_gbs = 0.0;  // structurally invalid, but charging
  // must still degrade to "no link model" instead of dividing by zero.
  const topo::CrossTraffic xt = topo::cross_traffic(t, 64, 4096.0);
  EXPECT_EQ(xt.remote_fraction, 0.0);
}

// --- serialization ----------------------------------------------------------

TEST(TopoSerialize, FlatMachineEmitsNoTopologySection) {
  const std::string text = arch::to_text(arch::machine(MachineId::Sg2044));
  EXPECT_EQ(text.find("topology."), std::string::npos);
}

TEST(TopoSerialize, TopologyMachinesRoundTripByteIdentically) {
  for (MachineId id : arch::topo_machines()) {
    const std::string text = arch::to_text(arch::machine(id));
    EXPECT_NE(text.find("topology.domain = "), std::string::npos);
    EXPECT_NE(text.find("topology.link = "), std::string::npos);
    // to_text(from_text(text)) == text is the strongest round-trip the
    // serializer promises (field order is canonical on output).
    EXPECT_EQ(arch::to_text(arch::from_text(text)), text) << arch::name_of(id);
  }
}

TEST(TopoSerialize, RoundTripPreservesEveryTopologyField) {
  arch::MachineModel m = arch::machine(MachineId::Sg2042Dual);
  const arch::MachineModel back = arch::from_text(arch::to_text(m));
  ASSERT_EQ(back.topology.domains.size(), m.topology.domains.size());
  for (std::size_t i = 0; i < m.topology.domains.size(); ++i) {
    EXPECT_EQ(back.topology.domains[i].id, m.topology.domains[i].id);
    EXPECT_EQ(back.topology.domains[i].cores, m.topology.domains[i].cores);
    EXPECT_DOUBLE_EQ(back.topology.domains[i].dram_gib,
                     m.topology.domains[i].dram_gib);
    EXPECT_DOUBLE_EQ(back.topology.domains[i].dram_bw_gbs,
                     m.topology.domains[i].dram_bw_gbs);
    EXPECT_DOUBLE_EQ(back.topology.domains[i].llc_mib,
                     m.topology.domains[i].llc_mib);
  }
  ASSERT_EQ(back.topology.links.size(), m.topology.links.size());
  for (std::size_t i = 0; i < m.topology.links.size(); ++i) {
    EXPECT_EQ(back.topology.links[i].from, m.topology.links[i].from);
    EXPECT_EQ(back.topology.links[i].to, m.topology.links[i].to);
    EXPECT_DOUBLE_EQ(back.topology.links[i].bandwidth_gbs,
                     m.topology.links[i].bandwidth_gbs);
    EXPECT_DOUBLE_EQ(back.topology.links[i].latency_ns,
                     m.topology.links[i].latency_ns);
    EXPECT_DOUBLE_EQ(back.topology.links[i].coherence_ns,
                     m.topology.links[i].coherence_ns);
  }
}

TEST(TopoSerialize, DuplicateDomainIdRejectedWithBothLines) {
  const std::string text =
      "name = x\n"
      "cores = 4\n"
      "topology.domain = a 2 1 10 1\n"
      "topology.domain = a 2 1 10 1\n";
  try {
    (void)arch::from_text(text);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate topology domain id 'a'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;  // first decl
  }
}

TEST(TopoSerialize, DanglingLinkEndpointRejectedWithItsLine) {
  const std::string text =
      "name = x\n"
      "cores = 4\n"
      "topology.domain = a 2 1 10 1\n"
      "topology.domain = b 2 1 10 1\n"
      "topology.link = a ghost 5 100 0\n";
  try {
    (void)arch::from_text(text);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("'ghost'"), std::string::npos) << what;
  }
}

TEST(TopoSerialize, MalformedDomainAndLinkLinesRejected) {
  EXPECT_THROW((void)arch::from_text("topology.domain = a 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)arch::from_text("topology.link = a b 5\n"),
               std::invalid_argument);
}

// --- validation + lint ------------------------------------------------------

TEST(TopoValidate, StructuralIssuesSurfaceThroughArchValidate) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  m.topology = dual();
  m.topology.links[0].to = "nowhere";
  EXPECT_FALSE(arch::is_valid(m));
}

TEST(TopoValidate, RegistryTopologyMachinesAreValid) {
  for (MachineId id : arch::topo_machines()) {
    EXPECT_TRUE(arch::is_valid(arch::machine(id))) << arch::name_of(id);
  }
}

TEST(TopoLint, FlatMachinesRaiseNoA3xx) {
  for (MachineId id : arch::all_machines()) {
    const analysis::Report r = analysis::lint_machine(arch::machine(id));
    for (const char* rule : {"A301", "A302", "A303", "A304"}) {
      EXPECT_TRUE(r.by_rule(rule).empty()) << arch::name_of(id) << " " << rule;
    }
  }
}

TEST(TopoLint, RegistryTopologyMachinesAreCleanUnderWerror) {
  analysis::LintOptions werror;
  werror.werror = true;
  for (MachineId id : arch::topo_machines()) {
    const analysis::Report r = analysis::apply(
        analysis::lint_machine(arch::machine(id)), werror);
    EXPECT_FALSE(r.has_errors()) << arch::name_of(id) << "\n" << r.format();
  }
}

TEST(TopoLint, A301FiresOnCoreSumMismatch) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  m.topology = dual();  // 64 domain cores vs...
  m.cores = 96;         // ...96 machine cores
  m.memory.numa_regions = 2;
  const auto hits = analysis::lint_machine(m).by_rule("A301");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, analysis::Severity::Error);
}

TEST(TopoLint, A302FiresWhenALinkOutrunsLocalDram) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  m.cores = 64;
  m.memory.numa_regions = 2;
  m.memory.dram_gib = 128.0;
  m.topology = dual(/*link_bw=*/60.0);  // == the 60 GB/s domain DRAM
  EXPECT_EQ(analysis::lint_machine(m).by_rule("A302").size(), 1u);
  m.topology.links[0].bandwidth_gbs = 12.0;
  EXPECT_TRUE(analysis::lint_machine(m).by_rule("A302").empty());
}

TEST(TopoLint, A303NotesDramSliceMismatch) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  m.cores = 64;
  m.memory.numa_regions = 2;
  m.topology = dual();          // slices sum to 128 GiB
  m.memory.dram_gib = 100.0;    // machine says 100
  const auto hits = analysis::lint_machine(m).by_rule("A303");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, analysis::Severity::Note);
}

TEST(TopoLint, A304FiresWhenNumaRegionsDisagree) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  m.cores = 64;
  m.memory.dram_gib = 128.0;
  m.memory.numa_regions = 4;  // but the topology declares 2 domains
  m.topology = dual();
  EXPECT_EQ(analysis::lint_machine(m).by_rule("A304").size(), 1u);
}

// --- backend charging -------------------------------------------------------

namespace {

/// A topology overlay for the stock SG2044 that matches its flat fields,
/// so only the explicit link model separates the two predictions.
arch::MachineModel sg2044_with_topology() {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  const double local_bw = m.memory.chip_stream_bw_gbs() / 2.0;
  const double llc_mib =
      static_cast<double>(m.llc_bytes()) / (2.0 * 1024.0 * 1024.0);
  topo::Topology t;
  t.domains = {{"s0", m.cores / 2, m.memory.dram_gib / 2, local_bw, llc_mib},
               {"s1", m.cores / 2, m.memory.dram_gib / 2, local_bw, llc_mib}};
  t.links = {{"s0", "s1", 24.0, 150.0, 40.0}};
  m.memory.numa_regions = 2;
  m.topology = t;
  return m;
}

}  // namespace

TEST(TopoCharging, AnalyticFlatMachineIsBitIdenticalWithEmptyTopology) {
  // The member default (empty Topology) IS the flat machine; this pins
  // that adding the member changed nothing for every existing machine.
  const arch::MachineModel& m = arch::machine(MachineId::Sg2044);
  ASSERT_TRUE(m.topology.flat());
  const auto sig = model::signature(Kernel::StreamTriad, ProblemClass::C);
  const auto cfg = model::paper_run_config(m, Kernel::StreamTriad, 64);
  arch::MachineModel copy = m;
  copy.topology = topo::Topology{};  // explicitly flat
  const auto a = model::predict(m, sig, cfg);
  const auto b = model::predict(copy, sig, cfg);
  EXPECT_EQ(a.seconds, b.seconds);  // bitwise, not NEAR
  EXPECT_EQ(a.mops, b.mops);
  const auto sa = sim::predict_interval(m, sig, cfg);
  const auto sb = sim::predict_interval(copy, sig, cfg);
  EXPECT_EQ(sa.seconds, sb.seconds);
}

TEST(TopoCharging, CrossSocketSpanSlowsBothBackends) {
  const arch::MachineModel flat = arch::machine(MachineId::Sg2044);
  const arch::MachineModel numa = sg2044_with_topology();
  const auto sig = model::signature(Kernel::StreamTriad, ProblemClass::C);
  const auto cfg = model::paper_run_config(flat, Kernel::StreamTriad, 64);

  // Spanning both sockets with a DRAM-sized working set must cost time
  // on both backends...
  EXPECT_GT(model::predict(numa, sig, cfg).seconds,
            model::predict(flat, sig, cfg).seconds);
  EXPECT_GT(sim::predict_interval(numa, sig, cfg).seconds,
            sim::predict_interval(flat, sig, cfg).seconds);

  // ...while a single-socket run on the same machine charges nothing
  // beyond the flat NUMA blend both machines share.
  const auto one = model::paper_run_config(flat, Kernel::StreamTriad, 32);
  EXPECT_EQ(model::predict(numa, sig, one).seconds,
            model::predict(flat, sig, one).seconds);
  EXPECT_EQ(sim::predict_interval(numa, sig, one).seconds,
            sim::predict_interval(flat, sig, one).seconds);
}

TEST(TopoCharging, PhasesStillSumToTotalOnTopologyMachines) {
  const auto sig = model::signature(Kernel::CG, ProblemClass::C);
  for (MachineId id : arch::topo_machines()) {
    const arch::MachineModel& m = arch::machine(id);
    const auto cfg = model::paper_run_config(m, Kernel::CG, m.cores);
    obs::SessionScope scope;
    (void)model::predict(m, sig, cfg);
    (void)sim::predict_interval(m, sig, cfg);
    for (const auto& p : scope.session().predictions()) {
      double sum = 0.0;
      for (const auto& ph : p.phases) sum += ph.seconds;
      EXPECT_NEAR(sum, p.seconds, 1e-9)
          << arch::name_of(id) << " " << p.backend;
    }
  }
}

TEST(TopoCharging, DnrRulesUnchangedByTopology) {
  // FT class C exceeds usable DRAM on a 4 GiB machine with or without an
  // overlay: feasibility is a property of totals, not of placement.
  arch::MachineModel tiny = arch::machine(MachineId::Sg2044);
  tiny.memory.dram_gib = 4.0;
  const auto sig = model::signature(Kernel::FT, ProblemClass::C);
  const auto cfg = model::paper_run_config(tiny, Kernel::FT, 8);
  const auto flat = model::predict(tiny, sig, cfg);
  ASSERT_FALSE(flat.ran);

  arch::MachineModel overlay = tiny;
  overlay.memory.numa_regions = 2;
  overlay.topology = dual();
  overlay.topology.domains[0].cores = overlay.cores / 2;
  overlay.topology.domains[1].cores = overlay.cores - overlay.cores / 2;
  const auto numa = model::predict(overlay, sig, cfg);
  EXPECT_FALSE(numa.ran);
  EXPECT_EQ(numa.dnr_reason, flat.dnr_reason);
  EXPECT_FALSE(sim::predict_interval(overlay, sig, cfg).ran);
}

TEST(TopoCharging, DualSocketShapeSplitsByBottleneck) {
  // The shape the dual-socket paper reports: bandwidth-bound STREAM
  // *degrades* once the uniform working set spans the slow inter-socket
  // link, while compute-bound EP (cache-resident working set — the span
  // factor never engages) keeps scaling across the second socket.
  const arch::MachineModel& m = arch::machine(MachineId::Sg2044Dual);
  const auto at = [&](Kernel k, int cores) {
    return model::predict(m, model::signature(k, ProblemClass::C),
                          model::paper_run_config(m, k, cores));
  };
  const double t64 = at(Kernel::StreamTriad, 64).mops;
  const double t128 = at(Kernel::StreamTriad, 128).mops;
  EXPECT_LT(t128, t64);        // the link charge bites...
  EXPECT_GT(t128, 0.2 * t64);  // ...but does not collapse the machine
  const double e64 = at(Kernel::EP, 64).mops;
  const double e128 = at(Kernel::EP, 128).mops;
  EXPECT_GT(e128, 1.5 * e64);  // compute never crosses the link
}

// --- engine placement hints -------------------------------------------------

TEST(TopoPlacement, HintsFollowTheMachineTopology) {
  EXPECT_EQ(engine::placement_for(arch::machine(MachineId::Sg2044)).domains, 1);
  EXPECT_EQ(engine::placement_for(arch::machine(MachineId::Sg2044Dual)).domains,
            2);
  EXPECT_EQ(
      engine::placement_for(arch::machine(MachineId::MonteCimoneV3)).domains,
      4);
}

TEST(TopoPlacement, UnhintedPoolReportsNoPlacement) {
  engine::ThreadPool pool(4);
  EXPECT_EQ(pool.placed_workers(), 0);
  EXPECT_EQ(pool.domain_of(3), 0);
}

TEST(TopoPlacement, HintedPoolStillRunsEveryTaskOnAnyHost) {
  // Whether or not the host lets us pin (single-CPU CI must not), the
  // pool's execution contract is unchanged.
  engine::PlacementHints hints;
  hints.domains = 2;
  engine::ThreadPool pool(4, hints);
  EXPECT_EQ(pool.domain_of(0), 0);
  EXPECT_EQ(pool.domain_of(1), 1);
  EXPECT_EQ(pool.domain_of(2), 0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 64);
  // Placement is best-effort: either nothing was pinned (gate off or
  // affinity refused) or at most every worker was.
  EXPECT_GE(pool.placed_workers(), 0);
  EXPECT_LE(pool.placed_workers(), pool.size());
}
