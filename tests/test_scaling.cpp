// Tests for rvhpc::model multicore scaling primitives.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "arch/registry.hpp"
#include "model/scaling.hpp"
#include "model/signatures.hpp"

namespace rvhpc::model {
namespace {

using arch::MachineId;

TEST(SoftMin, ApproachesTrueMin) {
  EXPECT_NEAR(soft_min(1.0, 100.0, 8.0), 1.0, 0.01);
  EXPECT_NEAR(soft_min(100.0, 1.0, 8.0), 1.0, 0.01);
}

TEST(SoftMin, SymmetricAndBelowBoth) {
  const double v = soft_min(3.0, 4.0);
  EXPECT_DOUBLE_EQ(v, soft_min(4.0, 3.0));
  EXPECT_LT(v, 3.0);
  EXPECT_GT(v, 0.0);
}

TEST(SoftMin, SharperExponentIsCloserToMin) {
  EXPECT_GT(soft_min(10.0, 10.0, 12.0), soft_min(10.0, 10.0, 2.0));
}

TEST(SoftMin, HandlesDegenerateInputs) {
  EXPECT_GT(soft_min(0.0, 5.0), 0.0);  // clamped, no NaN/inf
  EXPECT_TRUE(std::isfinite(soft_min(1e308, 1e308)));
}

class BandwidthCurve : public ::testing::TestWithParam<MachineId> {};
INSTANTIATE_TEST_SUITE_P(HpcMachines, BandwidthCurve,
                         ::testing::ValuesIn(arch::hpc_machines()),
                         [](const auto& pinfo) {
                           std::string n = arch::name_of(pinfo.param);
                           for (char& c : n) if (c == '-') c = '_';
                           return n;
                         });

TEST_P(BandwidthCurve, MonotoneNonDecreasingInCores) {
  const auto& m = arch::machine(GetParam());
  double prev = 0.0;
  for (int n = 1; n <= m.cores; n *= 2) {
    const double bw = chip_stream_bw_gbs(m, n, ThreadPlacement::OsDefault);
    EXPECT_GE(bw, prev - 1e-9) << n << " cores";
    prev = bw;
  }
}

TEST_P(BandwidthCurve, NeverExceedsSupply) {
  const auto& m = arch::machine(GetParam());
  for (int n = 1; n <= m.cores; n *= 2) {
    EXPECT_LE(chip_stream_bw_gbs(m, n, ThreadPlacement::OsDefault),
              m.memory.chip_stream_bw_gbs() + 1e-9);
  }
}

TEST(BandwidthCurve, Sg2042PlateausWhereSg2044Scales) {
  // The Fig. 1 shape: similar at 8 cores, >3x apart at 64.
  const auto& a = arch::machine(MachineId::Sg2044);
  const auto& b = arch::machine(MachineId::Sg2042);
  const double a8 = chip_stream_bw_gbs(a, 8, ThreadPlacement::OsDefault);
  const double b8 = chip_stream_bw_gbs(b, 8, ThreadPlacement::OsDefault);
  EXPECT_NEAR(a8 / b8, 1.0, 0.25);
  const double a64 = chip_stream_bw_gbs(a, 64, ThreadPlacement::OsDefault);
  const double b64 = chip_stream_bw_gbs(b, 64, ThreadPlacement::OsDefault);
  EXPECT_GT(a64 / b64, 3.0);
  // And the SG2042 genuinely plateaus: 16 -> 64 cores gains < 15%.
  const double b16 = chip_stream_bw_gbs(b, 16, ThreadPlacement::OsDefault);
  EXPECT_LT(b64 / b16, 1.15);
}

TEST(Placement, OsDefaultNeverWorseOnSingleNuma) {
  // §5.2: unset/false OMP_PROC_BIND was consistently best on the SG2044.
  const auto& m = arch::machine(MachineId::Sg2044);
  for (int n : {4, 16, 64}) {
    const double os = placement_bw_factor(m, n, ThreadPlacement::OsDefault);
    EXPECT_GE(os, placement_bw_factor(m, n, ThreadPlacement::Spread));
    EXPECT_GE(os, placement_bw_factor(m, n, ThreadPlacement::Close));
  }
}

TEST(Placement, ClosePackingStarvesNumaControllers) {
  const auto& epyc = arch::machine(MachineId::Epyc7742);
  // 16 threads packed into one of four NUMA regions reach 1/4 of the
  // controllers; spreading reaches them all.
  EXPECT_NEAR(placement_bw_factor(epyc, 16, ThreadPlacement::Close), 0.25,
              1e-9);
  EXPECT_GT(placement_bw_factor(epyc, 16, ThreadPlacement::Spread), 0.9);
  EXPECT_NEAR(placement_bw_factor(epyc, 64, ThreadPlacement::Close), 1.0,
              1e-9);
}

TEST(RandomCap, ScalesWithControllers) {
  const auto& a = arch::machine(MachineId::Sg2044);
  const auto& b = arch::machine(MachineId::Sg2042);
  const double lat = 150e-9;
  EXPECT_GT(chip_random_cap(a, lat), 5.0 * chip_random_cap(b, lat));
}

TEST(LoadedLatency, InflatesWithUtilisation) {
  const auto& m = arch::machine(MachineId::Sg2042);
  const double idle = loaded_dram_latency_s(m, 0.0);
  EXPECT_NEAR(idle, m.memory.idle_latency_ns * 1e-9, 1e-12);
  EXPECT_GT(loaded_dram_latency_s(m, 0.9), idle * 1.5);
  // Clamped: u > 0.95 behaves like 0.95.
  EXPECT_DOUBLE_EQ(loaded_dram_latency_s(m, 2.0),
                   loaded_dram_latency_s(m, 0.95));
}

TEST(SyncCost, GrowsWithCoresAndSyncs) {
  const auto& m = arch::machine(MachineId::Sg2044);
  auto sig = signature(Kernel::MG, ProblemClass::C);
  EXPECT_DOUBLE_EQ(sync_cost_s(m, sig, 1), 0.0);
  const double c8 = sync_cost_s(m, sig, 8);
  const double c64 = sync_cost_s(m, sig, 64);
  EXPECT_GT(c64, c8);
  sig.global_syncs *= 2.0;
  EXPECT_NEAR(sync_cost_s(m, sig, 64), 2.0 * c64, 1e-12);
}

TEST(SyncCost, SlowerClocksPayMore) {
  const auto sig = signature(Kernel::LU, ProblemClass::C);
  EXPECT_GT(sync_cost_s(arch::machine(MachineId::Sg2042), sig, 32),
            sync_cost_s(arch::machine(MachineId::Sg2044), sig, 32));
}

TEST(Imbalance, OneAtSingleCoreAndGrowing) {
  const auto sig = signature(Kernel::SP, ProblemClass::C);
  EXPECT_DOUBLE_EQ(imbalance_factor(sig, 1), 1.0);
  EXPECT_GT(imbalance_factor(sig, 64), imbalance_factor(sig, 8));
  EXPECT_LT(imbalance_factor(sig, 64), 2.0);  // stays a perturbation
}

TEST(ToString, PlacementNames) {
  EXPECT_EQ(to_string(ThreadPlacement::OsDefault), "os-default");
  EXPECT_EQ(to_string(ThreadPlacement::Spread), "spread");
  EXPECT_EQ(to_string(ThreadPlacement::Close), "close");
}

}  // namespace
}  // namespace rvhpc::model
