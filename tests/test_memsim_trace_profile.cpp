// Tests for rvhpc::memsim trace generators and the stall-profile
// simulation that reproduces Table 1.

#include <gtest/gtest.h>

#include <set>

#include "arch/registry.hpp"
#include "memsim/profile.hpp"
#include "memsim/trace.hpp"
#include "model/signatures.hpp"

namespace rvhpc::memsim {
namespace {

using model::Kernel;

TEST(XorShift, DeterministicAndBounded) {
  XorShift a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  for (int i = 0; i < 1000; ++i) EXPECT_LT(a.below(10), 10u);
  EXPECT_EQ(XorShift(5).below(0), 0u);
}

TEST(StreamGenerator, SequentialWrappingAddresses) {
  StreamGenerator g(0x1000, 256, 8, 1.0, 0.0);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      const TraceOp op = g.next();
      EXPECT_EQ(op.addr, 0x1000 + i * 8);
      EXPECT_TRUE(op.prefetchable);
      EXPECT_FALSE(op.is_write);
    }
  }
}

TEST(StreamGenerator, WriteRatioRoughlyHonoured) {
  StreamGenerator g(0, 1 << 20, 8, 1.0, 0.5);
  int writes = 0;
  for (int i = 0; i < 10000; ++i) writes += g.next().is_write ? 1 : 0;
  EXPECT_NEAR(writes / 10000.0, 0.5, 0.05);
}

TEST(RandomGenerator, StaysInFootprint) {
  RandomGenerator g(0x100000, 4096, 1.0, 0.3);
  for (int i = 0; i < 1000; ++i) {
    const TraceOp op = g.next();
    EXPECT_GE(op.addr, 0x100000u);
    EXPECT_LT(op.addr, 0x100000u + 4096u);
    EXPECT_FALSE(op.prefetchable);
  }
}

TEST(StencilGenerator, EmitsOneStorePerPoint) {
  StencilGenerator g(0, 16, 16, 16, 8.0);
  int writes = 0;
  for (int i = 0; i < 8 * 100; ++i) writes += g.next().is_write ? 1 : 0;
  EXPECT_EQ(writes, 100);  // 8 accesses per point, exactly one store
}

TEST(HistogramGenerator, AlternatesStreamAndUpdate) {
  HistogramGenerator g(0, 1 << 20, 1 << 30, 1 << 20, 2.0);
  const TraceOp key = g.next();
  const TraceOp hist = g.next();
  EXPECT_TRUE(key.prefetchable);
  EXPECT_FALSE(key.is_write);
  EXPECT_FALSE(hist.prefetchable);
  EXPECT_TRUE(hist.is_write);
  EXPECT_GE(hist.addr, 1u << 30);
}

TEST(TransposeGenerator, ReadsSequentialWritesStrided) {
  TransposeGenerator g(0, 1 << 20, 64, 64, 16, 2.0);
  const TraceOp r0 = g.next();
  const TraceOp w0 = g.next();
  const TraceOp r1 = g.next();
  const TraceOp w1 = g.next();
  EXPECT_FALSE(r0.is_write);
  EXPECT_TRUE(w0.is_write);
  EXPECT_EQ(r1.addr - r0.addr, 16u);               // sequential reads
  EXPECT_EQ(w1.addr - w0.addr, 64u * 16u);         // column stride writes
}

TEST(MixGenerator, HonoursWeights) {
  std::vector<MixGenerator::Part> parts;
  parts.push_back({std::make_unique<StreamGenerator>(0, 1 << 20, 8, 1.0, 0.0), 3});
  parts.push_back(
      {std::make_unique<RandomGenerator>(1 << 30, 4096, 1.0, 0.0), 1});
  MixGenerator mix(std::move(parts));
  int stream_ops = 0;
  for (int i = 0; i < 400; ++i) {
    if (mix.next().addr < (1u << 30)) ++stream_ops;
  }
  EXPECT_EQ(stream_ops, 300);
}

TEST(KernelTrace, AllKernelsProduceGenerators) {
  for (Kernel k : model::npb_all()) {
    auto g = kernel_trace(k, 1.0, 0, 1);
    ASSERT_NE(g, nullptr) << to_string(k);
    for (int i = 0; i < 100; ++i) (void)g->next();
  }
}

TEST(KernelTrace, CoresGetDisjointPrivateRegions) {
  auto g0 = kernel_trace(Kernel::MG, 1.0, 0, 1);
  auto g1 = kernel_trace(Kernel::MG, 1.0, 1, 1);
  std::set<std::uint64_t> a0, a1;
  for (int i = 0; i < 2000; ++i) {
    a0.insert(g0->next().addr >> 26);  // 64 MiB granules
    a1.insert(g1->next().addr >> 26);
  }
  for (std::uint64_t granule : a0) EXPECT_EQ(a1.count(granule), 0u);
}

// --- stall profiles (Table 1 shape on the Xeon 8170) -------------------------

ProfileConfig quick_cfg() {
  ProfileConfig cfg;
  cfg.cores = 26;  // footprints are sized against the full 26-core Xeon
  cfg.ops_per_core = 60000;
  return cfg;
}

TEST(StallProfile, EpIsClean) {
  const auto r = simulate_stalls(arch::machine(arch::MachineId::Xeon8170),
                                 Kernel::EP, quick_cfg());
  EXPECT_LT(r.cache_stall_pct, 20.0);
  EXPECT_LT(r.ddr_stall_pct, 2.0);
  EXPECT_EQ(r.ddr_bw_bound_pct, 0.0);
}

TEST(StallProfile, IsIsCacheBoundNotDdrBound) {
  const auto r = simulate_stalls(arch::machine(arch::MachineId::Xeon8170),
                                 Kernel::IS, quick_cfg());
  EXPECT_GT(r.cache_stall_pct, 20.0);
  EXPECT_LT(r.ddr_stall_pct, 5.0);
  EXPECT_GT(r.cache_stall_pct, 4.0 * r.ddr_stall_pct);
}

TEST(StallProfile, MgIsTheBandwidthHog) {
  const auto xeon = arch::machine(arch::MachineId::Xeon8170);
  const auto mg = simulate_stalls(xeon, Kernel::MG, quick_cfg());
  EXPECT_GT(mg.ddr_bw_bound_pct, 50.0);
  EXPECT_GT(mg.ddr_stall_pct, 5.0);
  for (Kernel k : {Kernel::EP, Kernel::BT, Kernel::LU}) {
    const auto other = simulate_stalls(xeon, k, quick_cfg());
    EXPECT_GT(mg.ddr_bw_bound_pct, other.ddr_bw_bound_pct) << to_string(k);
  }
}

TEST(StallProfile, CgStallsOnBothCacheAndDdr) {
  const auto r = simulate_stalls(arch::machine(arch::MachineId::Xeon8170),
                                 Kernel::CG, quick_cfg());
  EXPECT_GT(r.cache_stall_pct, 8.0);
  EXPECT_GT(r.ddr_stall_pct, 5.0);
}

TEST(StallProfile, DeterministicForFixedSeed) {
  const auto a = simulate_stalls(arch::machine(arch::MachineId::Xeon8170),
                                 Kernel::FT, quick_cfg());
  const auto b = simulate_stalls(arch::machine(arch::MachineId::Xeon8170),
                                 Kernel::FT, quick_cfg());
  EXPECT_DOUBLE_EQ(a.cache_stall_pct, b.cache_stall_pct);
  EXPECT_DOUBLE_EQ(a.ddr_stall_pct, b.ddr_stall_pct);
  EXPECT_DOUBLE_EQ(a.ddr_bw_bound_pct, b.ddr_bw_bound_pct);
}

TEST(StallProfile, ReportsAuxiliaryDiagnostics) {
  const auto r = simulate_stalls(arch::machine(arch::MachineId::Xeon8170),
                                 Kernel::SP, quick_cfg());
  EXPECT_GT(r.total_cycles, 0.0);
  EXPECT_GT(r.l1_hit_rate, 0.3);
  EXPECT_LE(r.l1_hit_rate, 1.0);
  EXPECT_GT(r.dram_requests_per_kop, 0.0);
}

}  // namespace
}  // namespace rvhpc::memsim
