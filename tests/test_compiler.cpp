// Tests for rvhpc::model compiler/vectorisation support matrix.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "arch/registry.hpp"
#include "model/compiler.hpp"
#include "model/signatures.hpp"

namespace rvhpc::model {
namespace {

using arch::VectorIsa;

const std::vector<CompilerId> kAllCompilers = {
    CompilerId::XuanTieGcc8_4, CompilerId::Gcc8_4,    CompilerId::Gcc9_2,
    CompilerId::Gcc11_2,       CompilerId::Gcc12_3_1, CompilerId::Gcc15_2};

TEST(Compiler, OnlyTheForkTargetsRvv071) {
  for (CompilerId id : kAllCompilers) {
    EXPECT_EQ(can_target(id, VectorIsa::RvvV0_7),
              id == CompilerId::XuanTieGcc8_4)
        << to_string(id);
  }
}

TEST(Compiler, OnlyGcc15TargetsRvv10) {
  // §6: foundational RVV support from GCC 13.1, full from 14 — of the
  // study's toolchains only 15.2 qualifies.  In particular the openEuler
  // default 12.3.1 cannot vectorise for the SG2044 at all.
  for (CompilerId id : kAllCompilers) {
    EXPECT_EQ(can_target(id, VectorIsa::RvvV1_0), id == CompilerId::Gcc15_2)
        << to_string(id);
  }
}

TEST(Compiler, MainlineTargetsMatureBackends) {
  for (VectorIsa isa : {VectorIsa::Avx2, VectorIsa::Avx512, VectorIsa::Neon}) {
    EXPECT_TRUE(can_target(CompilerId::Gcc8_4, isa));
    EXPECT_TRUE(can_target(CompilerId::Gcc15_2, isa));
    EXPECT_FALSE(can_target(CompilerId::XuanTieGcc8_4, isa));
  }
}

TEST(Compiler, NobodyTargetsNone) {
  for (CompilerId id : kAllCompilers) {
    EXPECT_FALSE(can_target(id, VectorIsa::None));
    EXPECT_EQ(autovec_quality(id, VectorIsa::None), 0.0);
  }
}

TEST(Compiler, QualityZeroWhenUntargetable) {
  EXPECT_EQ(autovec_quality(CompilerId::Gcc12_3_1, VectorIsa::RvvV1_0), 0.0);
}

TEST(Compiler, QualityInUnitRangeWhenTargetable) {
  for (CompilerId id : kAllCompilers) {
    for (VectorIsa isa : {VectorIsa::RvvV0_7, VectorIsa::RvvV1_0,
                          VectorIsa::Avx2, VectorIsa::Avx512, VectorIsa::Neon}) {
      const double q = autovec_quality(id, isa);
      if (can_target(id, isa)) {
        EXPECT_GT(q, 0.0);
        EXPECT_LE(q, 1.0);
      } else {
        EXPECT_EQ(q, 0.0);
      }
    }
  }
}

TEST(Compiler, GatherAutovecOnlyOnModernToolchain) {
  EXPECT_TRUE(gather_autovec(CompilerId::Gcc15_2));
  EXPECT_FALSE(gather_autovec(CompilerId::XuanTieGcc8_4));
  EXPECT_FALSE(gather_autovec(CompilerId::Gcc12_3_1));
}

TEST(Compiler, ScalarQualityCalibratedFromTable7) {
  // GCC 12.3.1 vs GCC 15.2-novec moves in both directions per kernel.
  EXPECT_GT(scalar_quality(CompilerId::Gcc12_3_1, Kernel::MG), 1.0);
  EXPECT_LT(scalar_quality(CompilerId::Gcc12_3_1, Kernel::FT), 1.0);
  EXPECT_NEAR(scalar_quality(CompilerId::Gcc15_2, Kernel::MG), 1.0, 1e-12);
}

TEST(Compiler, ScalarQualityAlwaysPositive) {
  for (CompilerId id : kAllCompilers) {
    for (Kernel k : npb_all()) {
      EXPECT_GT(scalar_quality(id, k), 0.5) << to_string(id);
      EXPECT_LT(scalar_quality(id, k), 1.3) << to_string(id);
    }
  }
}

TEST(Compiler, ParallelQualityWorstForGcc12OnIs) {
  // Table 8: IS gains 35% at 64 cores from the newer toolchain.
  const double is_q = parallel_quality(CompilerId::Gcc12_3_1, Kernel::IS);
  EXPECT_LT(is_q, 0.8);
  for (Kernel k : npb_all()) {
    if (k == Kernel::IS) continue;
    EXPECT_GT(parallel_quality(CompilerId::Gcc12_3_1, k), is_q);
  }
  EXPECT_DOUBLE_EQ(parallel_quality(CompilerId::Gcc15_2, Kernel::IS), 1.0);
}

TEST(Compiler, PaperDefaultsMatchSection5) {
  EXPECT_EQ(paper_default_compiler(arch::machine("sg2044")).id,
            CompilerId::Gcc15_2);
  EXPECT_EQ(paper_default_compiler(arch::machine("sg2042")).id,
            CompilerId::XuanTieGcc8_4);
  EXPECT_EQ(paper_default_compiler(arch::machine("epyc7742")).id,
            CompilerId::Gcc11_2);
  EXPECT_EQ(paper_default_compiler(arch::machine("xeon8170")).id,
            CompilerId::Gcc8_4);
  EXPECT_EQ(paper_default_compiler(arch::machine("thunderx2")).id,
            CompilerId::Gcc9_2);
  EXPECT_EQ(paper_default_compiler(arch::machine("bananapi-f3")).id,
            CompilerId::Gcc15_2);
}

TEST(Compiler, NamesAreUnique) {
  std::vector<std::string> names;
  for (CompilerId id : kAllCompilers) names.push_back(to_string(id));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace rvhpc::model
