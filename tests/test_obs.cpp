// Tests for rvhpc::obs — the tracing/metrics observability layer.
//
// Covers the subsystem contract: the null sink really is a no-op, trace
// JSON round-trips through the bundled parser, histogram percentiles are
// sane, concurrent emission from a threaded sweep is safe, and — the
// attribution invariant everything downstream relies on — a prediction's
// phase seconds sum to its total.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "memsim/hierarchy.hpp"
#include "model/predictor.hpp"
#include "model/signatures.hpp"
#include "model/sweep.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

using namespace rvhpc;

namespace {

model::Prediction predict_cg64() {
  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2044);
  return model::predict_paper_setup(
      m, model::signature(model::Kernel::CG, model::ProblemClass::C), 64);
}

}  // namespace

// --- null sink -------------------------------------------------------------

TEST(ObsNullSink, NoSessionMeansNoRecordsAndNoMetrics) {
  obs::set_session(nullptr);
  obs::set_metrics_enabled(false);
  obs::Registry::global().reset();

  obs::Counter& calls =
      obs::Registry::global().counter("rvhpc_predict_calls_total");
  const auto before = calls.value();

  {
    obs::ScopedSpan span("test", "should-vanish");
    span.arg("k", "v");
  }
  (void)predict_cg64();

  EXPECT_EQ(calls.value(), before) << "metrics advanced while disabled";
  EXPECT_EQ(obs::session(), nullptr);
  EXPECT_EQ(obs::timer_target("rvhpc_predict_wall_seconds"), nullptr);
}

TEST(ObsNullSink, NullPathIsCheapEnoughToCallEverywhere) {
  obs::set_session(nullptr);
  obs::set_metrics_enabled(false);
  // A loose functional bound (the strict 5% perf gate lives in
  // bench/obs_overhead): a million null-path hits must be effectively
  // instant, which catches an accidental allocation or lock on the path.
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1'000'000; ++i) {
    obs::ScopedTimer timer(obs::timer_target("rvhpc_predict_wall_seconds"));
    obs::ScopedSpan span("model", "predict");
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 2.0);
}

TEST(ObsSession, ScopeInstallsAndRestores) {
  obs::set_session(nullptr);
  obs::set_metrics_enabled(false);
  {
    obs::SessionScope scope;
    EXPECT_EQ(obs::session(), &scope.session());
    EXPECT_TRUE(obs::metrics_enabled());
    {
      obs::SessionScope inner(/*enable_metrics=*/false);
      EXPECT_EQ(obs::session(), &inner.session());
      EXPECT_TRUE(obs::metrics_enabled()) << "inner scope must not disable";
    }
    EXPECT_EQ(obs::session(), &scope.session());
  }
  EXPECT_EQ(obs::session(), nullptr);
  EXPECT_FALSE(obs::metrics_enabled());
}

// --- attribution invariant -------------------------------------------------

TEST(ObsAttribution, PhasesSumToPredictionTotal) {
  obs::SessionScope scope;
  const model::Prediction p = predict_cg64();
  ASSERT_TRUE(p.ran);

  const auto records = scope.session().predictions();
  ASSERT_EQ(records.size(), 1u);
  const obs::PredictionRecord& r = records.front();
  EXPECT_EQ(r.machine, "sg2044");
  EXPECT_EQ(r.kernel, "CG");
  EXPECT_EQ(r.cores, 64);
  ASSERT_EQ(r.phases.size(), 4u);

  double sum = 0.0;
  for (const obs::Phase& ph : r.phases) sum += ph.seconds;
  EXPECT_NEAR(sum, p.seconds, 1e-9);
  EXPECT_DOUBLE_EQ(r.seconds, p.seconds);
  EXPECT_EQ(r.bottleneck, to_string(p.breakdown.dominant));

  // Runner-up margins: the other three resources, every one at most 100%
  // of the dominant, sorted descending.
  ASSERT_EQ(r.runner_up.size(), 3u);
  for (std::size_t i = 0; i < r.runner_up.size(); ++i) {
    EXPECT_LE(r.runner_up[i].second, 1.0 + 1e-12);
    if (i > 0) {
      EXPECT_GE(r.runner_up[i - 1].second, r.runner_up[i].second);
    }
  }
}

TEST(ObsAttribution, PhaseSumHoldsAcrossMachinesKernelsAndCores) {
  obs::SessionScope scope;
  for (arch::MachineId id : arch::hpc_machines()) {
    for (model::Kernel k : {model::Kernel::IS, model::Kernel::MG,
                            model::Kernel::EP, model::Kernel::CG,
                            model::Kernel::FT}) {
      (void)model::scale_cores(id, k, model::ProblemClass::C);
    }
  }
  const auto records = scope.session().predictions();
  ASSERT_GT(records.size(), 100u);
  for (const obs::PredictionRecord& r : records) {
    if (!r.ran) continue;
    double sum = 0.0;
    for (const obs::Phase& ph : r.phases) sum += ph.seconds;
    EXPECT_NEAR(sum, r.seconds, 1e-9)
        << r.machine << "/" << r.kernel << "@" << r.cores;
  }
}

TEST(ObsAttribution, DnrPredictionsAreRecordedWithReason) {
  obs::SessionScope scope;
  const arch::MachineModel& d1 = arch::machine(arch::MachineId::AllwinnerD1);
  const model::Prediction p = model::predict_paper_setup(
      d1, model::signature(model::Kernel::FT, model::ProblemClass::B), 1);
  ASSERT_FALSE(p.ran);
  const auto records = scope.session().predictions();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records.front().ran);
  EXPECT_EQ(records.front().dnr_reason, p.dnr_reason);
  EXPECT_TRUE(records.front().phases.empty());
}

// --- trace JSON round-trip -------------------------------------------------

TEST(ObsTraceJson, RoundTripsThroughParser) {
  obs::SessionScope scope;
  (void)predict_cg64();
  (void)model::scale_cores(arch::MachineId::Sg2042, model::Kernel::IS,
                           model::ProblemClass::C);

  const std::string doc = obs::chrome_trace_json(scope.session());
  const obs::json::Value v = obs::json::parse(doc);
  ASSERT_TRUE(v.is(obs::json::Value::Type::Object));

  const obs::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(obs::json::Value::Type::Array));
  EXPECT_EQ(events->array.size(), scope.session().event_count());

  std::size_t predictions = 0;
  for (const obs::json::Value& e : events->array) {
    const obs::json::Value* name = e.find("name");
    const obs::json::Value* ph = e.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_TRUE(ph->str == "X" || ph->str == "i");
    if (ph->str == "X") {
      EXPECT_GE(e.find("dur")->num, 0.0);
    }
    if (name->str.rfind("prediction ", 0) == 0) {
      ++predictions;
      const obs::json::Value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const obs::json::Value* ran = args->find("ran");
      ASSERT_NE(ran, nullptr);
      if (!ran->boolean) continue;
      // The acceptance-criterion check, via the parsed document: phase
      // seconds sum to the prediction total.
      const obs::json::Value* phases = args->find("phases");
      ASSERT_NE(phases, nullptr);
      double sum = 0.0;
      for (const auto& [k, val] : phases->object) sum += val.num;
      EXPECT_NEAR(sum, args->find("seconds")->num, 1e-9) << name->str;
    }
  }
  EXPECT_EQ(predictions, scope.session().predictions().size());
}

TEST(ObsTraceJson, EscapesAwkwardStrings) {
  obs::TraceSession s;
  s.add_instant("quote\"back\\slash\nnewline\ttab\x01ctl", "cat", {{"k", "v\"w"}});
  const obs::json::Value v = obs::json::parse(obs::chrome_trace_json(s));
  const auto& ev = v.find("traceEvents")->array.front();
  EXPECT_EQ(ev.find("name")->str, "quote\"back\\slash\nnewline\ttab\x01ctl");
  EXPECT_EQ(ev.find("args")->find("k")->str, "v\"w");
}

TEST(ObsJsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW(obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("tru"), std::runtime_error);
  EXPECT_THROW(obs::json::parse(""), std::runtime_error);
}

// --- metrics ---------------------------------------------------------------

TEST(ObsMetrics, HistogramPercentiles) {
  std::vector<double> bounds;
  for (double b = 10.0; b <= 1000.0; b += 10.0) bounds.push_back(b);
  obs::Histogram h(bounds);
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.sum(), 500500.0, 1e-9);
  // With 10-wide buckets the interpolation error is below one bucket.
  EXPECT_NEAR(h.percentile(50), 500.0, 10.0);
  EXPECT_NEAR(h.percentile(90), 900.0, 10.0);
  EXPECT_NEAR(h.percentile(99), 990.0, 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(ObsMetrics, HistogramOverflowBucketClampsToObservedMax) {
  obs::Histogram h({1.0, 2.0});
  h.observe(5.0);
  h.observe(7.0);
  // The overflow bucket has no upper bound, so interpolation must use the
  // observed extremes instead of running off to infinity.
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
  EXPECT_NEAR(h.percentile(99), 7.0, 0.1);
  EXPECT_NEAR(h.percentile(1), 5.0, 2.0);
  EXPECT_LE(h.percentile(99), 7.0);
  EXPECT_GE(h.percentile(1), 5.0);
}

TEST(ObsMetrics, RegistryCountsPredictsAndRendersBothFormats) {
  obs::Registry::global().reset();
  obs::SessionScope scope;
  (void)predict_cg64();
  (void)predict_cg64();

  EXPECT_EQ(
      obs::Registry::global().counter("rvhpc_predict_calls_total").value(), 2u);
  EXPECT_EQ(
      obs::Registry::global().histogram("rvhpc_predict_wall_seconds").count(),
      2u);

  const std::string text = obs::Registry::global().render_text();
  EXPECT_NE(text.find("rvhpc_predict_calls_total 2"), std::string::npos);

  const obs::json::Value v =
      obs::json::parse(obs::Registry::global().render_json());
  const obs::json::Value* calls = v.find("rvhpc_predict_calls_total");
  ASSERT_NE(calls, nullptr);
  EXPECT_DOUBLE_EQ(calls->find("value")->num, 2.0);
  EXPECT_EQ(calls->find("type")->str, "counter");
}

TEST(ObsMetrics, ResetZeroesButKeepsReferencesValid) {
  obs::Registry::global().reset();
  obs::Counter& c = obs::Registry::global().counter("test_counter_total");
  c.add(41);
  obs::Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(obs::Registry::global().counter("test_counter_total").value(), 1u);
}

// --- memsim emission -------------------------------------------------------

TEST(ObsMemsim, HierarchyEmitsCacheStatsAndCountsAccesses) {
  obs::Registry::global().reset();
  obs::SessionScope scope;
  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2044);
  memsim::Hierarchy h(m, 2);
  // A stream long enough to cross the 4096-access event stride.
  for (std::uint64_t i = 0; i < 5000; ++i) {
    (void)h.access(static_cast<int>(i % 2), i * 64, false);
  }
  std::size_t cache_stats = 0;
  for (const obs::Instant& in : scope.session().instants()) {
    if (in.name == "cache-stats") ++cache_stats;
  }
  EXPECT_GE(cache_stats, 1u);
  EXPECT_EQ(obs::Registry::global()
                .counter("rvhpc_memsim_accesses_total")
                .value(),
            5000u);
}

// --- concurrency -----------------------------------------------------------

TEST(ObsConcurrency, ThreadedSweepEmissionIsSafeAndComplete) {
  obs::SessionScope scope;
  const auto ids = arch::hpc_machines();
  std::vector<std::thread> threads;
  threads.reserve(ids.size());
  for (arch::MachineId id : ids) {
    threads.emplace_back([id] {
      (void)model::scale_cores(id, model::Kernel::MG, model::ProblemClass::C);
    });
  }
  for (std::thread& t : threads) t.join();

  std::size_t expected_points = 0;
  for (arch::MachineId id : ids) {
    expected_points += model::power_of_two_cores(arch::machine(id).cores).size();
  }
  EXPECT_EQ(scope.session().predictions().size(), expected_points);

  // Every record intact (no torn strings/phases) and the JSON of the
  // concurrent session still parses.
  for (const obs::PredictionRecord& r : scope.session().predictions()) {
    EXPECT_FALSE(r.machine.empty());
    EXPECT_EQ(r.kernel, "MG");
    if (r.ran) {
      EXPECT_EQ(r.phases.size(), 4u);
    }
  }
  EXPECT_NO_THROW(
      (void)obs::json::parse(obs::chrome_trace_json(scope.session())));
}

// --- record cap ------------------------------------------------------------

TEST(ObsSessionCap, RingEvictsOldestAndCountsDrops) {
  obs::TraceSession s;
  s.set_max_records(4);
  for (int i = 0; i < 10; ++i) {
    s.add_instant("tick" + std::to_string(i), "test");
  }
  EXPECT_EQ(s.event_count(), 4u);
  EXPECT_EQ(s.dropped_records(), 6u);
  const auto instants = s.instants();
  ASSERT_EQ(instants.size(), 4u);
  // Ring semantics: the most recent history survives.
  EXPECT_EQ(instants.front().name, "tick6");
  EXPECT_EQ(instants.back().name, "tick9");
}

TEST(ObsSessionCap, LoweringCapBelowPopulationEvictsImmediately) {
  obs::TraceSession s;
  for (int i = 0; i < 8; ++i) {
    s.add_instant("e" + std::to_string(i), "test");
  }
  s.set_max_records(3);
  EXPECT_EQ(s.event_count(), 3u);
  EXPECT_EQ(s.dropped_records(), 5u);
}

TEST(ObsSessionCap, AttributionReportWarnsAboutDroppedRecords) {
  obs::SessionScope scope;
  scope.session().set_max_records(2);
  for (int i = 0; i < 5; ++i) (void)predict_cg64();
  const std::string report = obs::attribution_report(scope.session());
  EXPECT_NE(report.find("dropped by the session cap (max_records=2)"),
            std::string::npos);
  EXPECT_GT(scope.session().dropped_records(), 0u);
}

// --- report ----------------------------------------------------------------

TEST(ObsReport, AttributionNamesSaturatedResourceAndDnr) {
  obs::SessionScope scope;
  const model::Prediction p = predict_cg64();
  const arch::MachineModel& d1 = arch::machine(arch::MachineId::AllwinnerD1);
  (void)model::predict_paper_setup(
      d1, model::signature(model::Kernel::FT, model::ProblemClass::B), 1);

  const std::string report = obs::attribution_report(scope.session());
  EXPECT_NE(report.find("saturated resource: " +
                        to_string(p.breakdown.dominant)),
            std::string::npos);
  EXPECT_NE(report.find("runner-up:"), std::string::npos);
  EXPECT_NE(report.find("did not run:"), std::string::npos);
  EXPECT_NE(report.find("sg2044 / CG class C @ 64 cores"), std::string::npos);
}

// --- trace diff -----------------------------------------------------------

namespace {

/// A real trace document for one (kernel, cores) prediction, produced by
/// the same exporter rvhpc-profile --trace uses.
std::string trace_for(model::Kernel kernel, int cores) {
  obs::SessionScope scope;
  const arch::MachineModel& m = arch::machine(arch::MachineId::Sg2044);
  const auto sig = model::signature(kernel, model::ProblemClass::C);
  (void)model::predict(m, sig, model::paper_run_config(m, kernel, cores));
  return obs::chrome_trace_json(scope.session());
}

}  // namespace

TEST(ObsDiff, IdenticalTracesShowZeroDeltasAndNoFlips) {
  const std::string t = trace_for(model::Kernel::CG, 64);
  const std::string report = obs::trace_diff_report(t, t, "a", "b");
  EXPECT_NE(report.find("1 matched"), std::string::npos);
  EXPECT_NE(report.find("0 bottleneck flips"), std::string::npos);
  EXPECT_NE(report.find("seconds:"), std::string::npos);
  EXPECT_NE(report.find("(+0.0%)"), std::string::npos);
  EXPECT_EQ(report.find("[FLIP]"), std::string::npos);
  EXPECT_NE(report.find("phase compute"), std::string::npos);
}

TEST(ObsDiff, ReportsPerPhaseDeltasBetweenCoreCounts) {
  // Same identity key requires same cores; different kernels at the same
  // cores do NOT match — so compare a doctored copy: rename B's kernel via
  // a fresh run with a perturbed machine instead.  The simplest real
  // contrast with a shared key: identical sweep traced twice, one side
  // hand-scaled.  Here we just verify unmatched keys are listed.
  const std::string a = trace_for(model::Kernel::CG, 64);
  const std::string b = trace_for(model::Kernel::CG, 32);
  const std::string report = obs::trace_diff_report(a, b);
  EXPECT_NE(report.find("only in A: sg2044/CG.C@64"), std::string::npos);
  EXPECT_NE(report.find("only in B: sg2044/CG.C@32"), std::string::npos);
  EXPECT_NE(report.find("0 matched"), std::string::npos);
}

TEST(ObsDiff, FlagsBottleneckFlipsAndSaturationEventChanges) {
  // CG at 1 core is latency-bound on the SG2044; at 64 cores the sync and
  // bandwidth picture changes and DRAM saturation events appear — exactly
  // the signals --diff exists to surface.  Craft the flip explicitly so
  // the test does not depend on calibration: patch the bottleneck string
  // in a copied document.
  const std::string a = trace_for(model::Kernel::CG, 64);
  std::string b = a;
  // Patch the prediction record's bottleneck (the one in the same args
  // object as "phases" — spans carry a bottleneck arg of their own).
  const std::string from = "\"bottleneck\": \"";
  const std::size_t phases = b.find("\"phases\"");
  ASSERT_NE(phases, std::string::npos);
  const std::size_t at = b.rfind(from, phases);
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = b.find('"', at + from.size());
  b.replace(at, end + 1 - at, from + "made-up-resource\"");
  const std::string report = obs::trace_diff_report(a, b);
  EXPECT_NE(report.find("[FLIP]"), std::string::npos);
  EXPECT_NE(report.find("1 bottleneck flip"), std::string::npos);
  EXPECT_NE(report.find("made-up-resource"), std::string::npos);
}

TEST(ObsDiff, ReportsNewAndVanishedInstantEvents) {
  const std::string a = trace_for(model::Kernel::CG, 64);
  // Splice a synthetic saturation instant into B's traceEvents array.
  std::string b = a;
  const std::string anchor = "\"traceEvents\": [";
  const std::size_t at = b.find(anchor) + anchor.size();
  b.insert(at,
           "\n  {\"name\": \"dram-channel-saturation\", \"cat\": \"scaling\", "
           "\"ph\": \"i\", \"s\": \"t\", \"ts\": 1, \"pid\": 1, \"tid\": 0, "
           "\"args\": {}},");
  const std::string report = obs::trace_diff_report(a, b);
  EXPECT_NE(report.find("new in B: scaling/dram-channel-saturation"),
            std::string::npos);
  const std::string reverse = obs::trace_diff_report(b, a);
  EXPECT_NE(reverse.find("vanished: scaling/dram-channel-saturation"),
            std::string::npos);
}

TEST(ObsDiff, RejectsNonTraceDocuments) {
  EXPECT_THROW((void)obs::trace_diff_report("not json", "{}"),
               std::runtime_error);
  EXPECT_THROW((void)obs::trace_diff_report("{}", "{\"traceEvents\": 3}"),
               std::runtime_error);
}
