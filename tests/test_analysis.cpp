// Tests for rvhpc::analysis — the rule-based static-analysis engine.
//
// The contract under test: every shipped model (registry machines, the
// example .machine file, the full signature suite) lints clean; a
// deliberately-inconsistent fixture machine triggers each machine rule
// exactly once with the correct .machine line number; suppression and
// --werror semantics behave as documented.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "analysis/engine.hpp"
#include "analysis/render.hpp"
#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "model/signatures.hpp"

namespace rvhpc::analysis {
namespace {

using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

// ---------------------------------------------------------------------------
// Shipped models are clean.

class RegistryLint : public ::testing::TestWithParam<MachineId> {};
INSTANTIATE_TEST_SUITE_P(EveryRegistryMachine, RegistryLint,
                         ::testing::ValuesIn(arch::all_machines()),
                         [](const auto& pinfo) {
                           std::string n = arch::name_of(pinfo.param);
                           for (char& c : n) if (c == '-') c = '_';
                           return n;
                         });

TEST_P(RegistryLint, LintsClean) {
  const Report r = lint_machine(arch::machine(GetParam()));
  EXPECT_TRUE(r.empty()) << r.format();
}

TEST(LintRegistry, RegistryAndCalibrationClean) {
  const Report r = lint_registry();
  EXPECT_TRUE(r.empty()) << r.format();
}

TEST(LintSignatures, FullSuiteClean) {
  const Report r = lint_signature_suite();
  EXPECT_TRUE(r.empty()) << r.format();
}

TEST(LintFiles, Sg2046ExampleMachineLintsClean) {
  std::ifstream in(std::string(RVHPC_SOURCE_DIR) +
                   "/examples/machines/sg2046-hypothetical.machine");
  ASSERT_TRUE(in.good()) << "example machine file missing";
  const arch::ParsedMachine pm = arch::parse_machine(in);
  const Report r = lint_machine_file(pm, "sg2046-hypothetical.machine");
  EXPECT_TRUE(r.empty()) << r.format();
}

// ---------------------------------------------------------------------------
// The fixture: one machine, one violation per machine rule.
//
// A002 (opaque ddr_kind) is mutually exclusive with A001 (which needs a
// parseable ddr_kind), so it is exercised by its own fixture below.

constexpr const char* kFixture = R"(name = broken
isa = RV64GC
cores = 6
cluster_size = 2
core.clock_ghz = 9.0
core.out_of_order = false
core.decode_width = 1
core.issue_width = 2
core.sustained_scalar_opc = 1.8
core.miss_level_parallelism = 12
core.vector.isa = RVV v1.0
core.vector.width_bits = 192
cache = L1D 32768 8 64 1 4
cache = L2 262144 16 64 3 12
cache = L3 262144 16 64 6 30
memory.controllers = 2
memory.channels = 3
memory.ddr_kind = DDR4-3200
memory.channel_bw_gbs = 51.2
memory.stream_efficiency = 0.99
memory.idle_latency_ns = 500
memory.numa_regions = 4
memory.dram_gib = 0.0001
)";

/// Machine rule id -> the fixture line (1-based) its finding must point at.
const std::map<std::string, int>& fixture_expectations() {
  static const std::map<std::string, int> expected = {
      {"A001-bw-channel-mismatch", 19},       // memory.channel_bw_gbs
      {"A003-stream-efficiency-implausible", 20},
      {"A004-cluster-cache-mismatch", 14},    // the L2 cache line
      {"A005-cache-per-core-shrink", 15},     // the L3 cache line
      {"A006-isa-vector-mismatch", 11},       // core.vector.isa
      {"A007-vector-width-pow2", 12},
      {"A008-idle-latency-implausible", 21},
      {"A009-numa-core-split", 22},
      {"A010-clock-implausible", 5},
      {"A011-llc-exceeds-dram", 23},          // memory.dram_gib
      {"A012-opc-exceeds-decode", 9},
      {"A013-inorder-deep-mlp", 10},
      {"A014-channel-controller-split", 17},
  };
  return expected;
}

TEST(Fixture, TriggersEveryMachineRuleExactlyOnce) {
  const arch::ParsedMachine pm = arch::parse_machine(kFixture);
  const Report r = lint_machine_file(pm, "broken.machine");
  for (const auto& [rule, line] : fixture_expectations()) {
    EXPECT_EQ(r.by_rule(rule).size(), 1u) << rule << "\n" << r.format();
  }
  // ...and nothing else fires: the fixture's violations are disjoint.
  EXPECT_EQ(r.diagnostics.size(), fixture_expectations().size()) << r.format();
}

TEST(Fixture, DiagnosticsCarryTheOffendingLine) {
  const arch::ParsedMachine pm = arch::parse_machine(kFixture);
  const Report r = lint_machine_file(pm, "broken.machine");
  for (const auto& [rule, line] : fixture_expectations()) {
    const auto hits = r.by_rule(rule);
    ASSERT_EQ(hits.size(), 1u) << rule;
    EXPECT_EQ(hits[0].loc.line, line) << rule << ": " << hits[0].format();
    EXPECT_EQ(hits[0].loc.file, "broken.machine");
  }
}

TEST(Fixture, ContradictoryMemoryParametersYieldA001WithLineNumber) {
  // The acceptance-criteria case in isolation: DDR4-3200 cannot move
  // 51.2 GB/s down one channel (25.6 GB/s theoretical peak).
  const auto hits = lint_machine_file(arch::parse_machine(kFixture),
                                      "broken.machine")
                        .by_rule("A001");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::Error);
  EXPECT_EQ(hits[0].field, "memory.channel_bw_gbs");
  EXPECT_EQ(hits[0].loc.line, 19);
}

TEST(Fixture, OpaqueDdrKindYieldsA002NoteOnly) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  m.memory.ddr_kind = "HBM3";
  const Report r = lint_machine(m);
  ASSERT_EQ(r.diagnostics.size(), 1u) << r.format();
  EXPECT_EQ(r.by_rule("A002").size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Severity::Note);
}

// ---------------------------------------------------------------------------
// Suppression and werror semantics.

TEST(Options, SuppressionByPrefixAndFullId) {
  Report r = lint_machine(arch::parse_machine(kFixture).model);
  LintOptions opts;
  opts.suppressed = {"A001", "A006-isa-vector-mismatch"};
  const Report filtered = apply(std::move(r), opts);
  EXPECT_TRUE(filtered.by_rule("A001").empty());
  EXPECT_TRUE(filtered.by_rule("A006").empty());
  EXPECT_EQ(filtered.by_rule("A007").size(), 1u);  // untouched
}

TEST(Options, WerrorPromotesWarningsToErrors) {
  Report r = lint_machine(arch::parse_machine(kFixture).model);
  const std::size_t warns = r.count(Severity::Warn);
  ASSERT_GT(warns, 0u);
  const std::size_t errors = r.count(Severity::Error);
  LintOptions opts;
  opts.werror = true;
  const Report promoted = apply(std::move(r), opts);
  EXPECT_EQ(promoted.count(Severity::Warn), 0u);
  EXPECT_EQ(promoted.count(Severity::Error), errors + warns);
}

TEST(Options, MachineFileDirectiveSuppressesRules) {
  const std::string text =
      std::string("# rvhpc-lint: disable=A010,A013-inorder-deep-mlp\n") +
      kFixture;
  const arch::ParsedMachine pm = arch::parse_machine(text);
  const Report r = lint_machine_file(pm, "broken.machine");
  EXPECT_TRUE(r.by_rule("A010").empty()) << r.format();
  EXPECT_TRUE(r.by_rule("A013").empty()) << r.format();
  EXPECT_EQ(r.by_rule("A001").size(), 1u);
}

TEST(Options, RuleMatchingIsExactOrPrefix) {
  EXPECT_TRUE(rule_matches("A001-bw-channel-mismatch", "A001"));
  EXPECT_TRUE(rule_matches("A001-bw-channel-mismatch",
                           "A001-bw-channel-mismatch"));
  EXPECT_FALSE(rule_matches("A001-bw-channel-mismatch", "A00"));
  EXPECT_FALSE(rule_matches("A001-bw-channel-mismatch", "A002"));
  EXPECT_FALSE(rule_matches("A001-bw-channel-mismatch", ""));
}

// ---------------------------------------------------------------------------
// Signature rules: one bad signature per rule id.

model::WorkloadSignature good() {
  return model::signature(Kernel::MG, ProblemClass::C);
}

TEST(SignatureRules, FractionOutOfRangeIsA101) {
  auto s = good();
  s.vectorisable_fraction = 1.5;
  EXPECT_EQ(lint_signature(s).by_rule("A101").size(), 1u);
}

TEST(SignatureRules, MissingRandomFootprintIsA102) {
  auto s = good();
  s.random_access_per_op = 0.5;
  s.random_footprint_mib = 0.0;
  EXPECT_EQ(lint_signature(s).by_rule("A102").size(), 1u);
}

TEST(SignatureRules, FootprintBeyondWorkingSetIsA102) {
  auto s = good();
  s.random_access_per_op = 0.5;
  s.random_footprint_mib = s.working_set_mib * 2.0;
  EXPECT_EQ(lint_signature(s).by_rule("A102").size(), 1u);
}

TEST(SignatureRules, NonPositiveWorkIsA103) {
  auto s = good();
  s.total_mop = 0.0;
  EXPECT_EQ(lint_signature(s).by_rule("A103").size(), 1u);
}

TEST(SignatureRules, OddElementWidthIsA104) {
  auto s = good();
  s.element_bits = 16;
  EXPECT_EQ(lint_signature(s).by_rule("A104").size(), 1u);
}

TEST(SignatureRules, CacheLinePerOpExceededIsA105) {
  auto s = good();
  s.streamed_bytes_per_op = 128.0;
  EXPECT_EQ(lint_signature(s).by_rule("A105").size(), 1u);
}

TEST(SignatureRules, GatherWithoutVectorisationIsA106) {
  auto s = good();
  s.vectorisable_fraction = 0.0;
  s.gather_fraction = 0.5;
  EXPECT_EQ(lint_signature(s).by_rule("A106").size(), 1u);
}

TEST(SignatureRules, AlwaysHittingRandomAccessesAreA107) {
  auto s = good();
  s.random_access_per_op = 0.5;
  s.random_footprint_mib = 1.0;
  s.random_llc_hit_fraction = 1.0;
  EXPECT_EQ(lint_signature(s).by_rule("A107").size(), 1u);
}

TEST(SignatureRules, MoreBarriersThanOpsIsA108) {
  auto s = good();
  s.global_syncs = s.total_mop * 1e6 * 2.0;
  EXPECT_EQ(lint_signature(s).by_rule("A108").size(), 1u);
}

// ---------------------------------------------------------------------------
// Catalogue and rendering.

TEST(Catalogue, RuleIdsAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const RuleInfo& info : rule_catalogue()) {
    EXPECT_TRUE(seen.insert(info.id).second) << "duplicate id " << info.id;
    // A-family rules lint models/signatures/calibration; B-family lints
    // bench C++ sources.
    EXPECT_TRUE(info.id[0] == 'A' || info.id[0] == 'B') << info.id;
    EXPECT_NE(info.id.find('-'), std::string::npos) << info.id;
    EXPECT_FALSE(info.summary.empty()) << info.id;
  }
}

TEST(BenchSource, FlagsModelCallsInsideLoopsOnly) {
  const std::string src =
      "int main() {\n"
      "  double s = 0;\n"
      "  for (int c = 1; c <= 64; c *= 2) {\n"
      "    s += model::predict(m, sig, cfg).mops;\n"
      "  }\n"
      "  while (more()) s += model::at_cores(id, k, cls, 1).mops;\n"
      "  s += model::predict(m, sig, cfg).mops;  // straight-line: fine\n"
      "  for (int i = 0; i < 3; ++i) s += cache.predict(i);  // member: fine\n"
      "  for (int i = 0; i < 2; ++i) log(\"predict(x)\");  // string: fine\n"
      "  return s > 0;\n"
      "}\n";
  const Report r = lint_bench_source(src, "probe.cpp");
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(r.diagnostics[0].rule, "B001-direct-predict-sweep");
  EXPECT_EQ(r.diagnostics[0].loc.line, 4);
  EXPECT_EQ(r.diagnostics[0].field, "predict");
  EXPECT_EQ(r.diagnostics[1].loc.line, 6);
  EXPECT_EQ(r.diagnostics[1].field, "at_cores");
}

TEST(BenchSource, CommentsAndNestedBracesDoNotConfuseTheScanner) {
  const std::string src =
      "void f() {\n"
      "  /* for (;;) predict(a, b, c); */\n"
      "  // while (1) at_cores(i, k, c, 1);\n"
      "  for (int i = 0; i < 2; ++i) {\n"
      "    if (i) { g(); }\n"
      "  }\n"
      "  scale_cores(id, k, cls);\n"
      "}\n";
  EXPECT_TRUE(lint_bench_source(src, "clean.cpp").empty());
}

TEST(BenchSource, InFileDirectiveSuppressesB001) {
  const std::string src =
      "// rvhpc-lint: disable=B001 — times the raw call on purpose\n"
      "void bench() {\n"
      "  for (int i = 0; i < 9; ++i) keep(model::predict(m, sig, cfg));\n"
      "}\n";
  EXPECT_TRUE(lint_bench_source(src, "suppressed.cpp").empty());
}

TEST(BenchSource, ShippedBenchSourcesAreClean) {
  // The migration contract: no bench/example source sweeps the model
  // directly any more.  Runs over the two suppressed benches too — their
  // in-file directives must keep working.
  for (const char* rel :
       {"/bench/suite_summary.cpp", "/bench/calibration_check.cpp",
        "/bench/future_work.cpp", "/bench/micro_benchmarks.cpp",
        "/bench/obs_overhead.cpp", "/examples/paper_tour.cpp"}) {
    const std::string path = std::string(RVHPC_SOURCE_DIR) + rel;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream source;
    source << in.rdbuf();
    const Report r = lint_bench_source(source.str(), path);
    EXPECT_TRUE(r.empty()) << path << "\n" << r.format();
  }
}

TEST(Render, TableHasOneRowPerFinding) {
  const Report r = lint_machine(arch::parse_machine(kFixture).model);
  EXPECT_EQ(render_table(r).rows(), r.diagnostics.size());
  EXPECT_EQ(render_catalogue().rows(), rule_catalogue().size());
  EXPECT_NE(summarize(r).find("error"), std::string::npos);
}

}  // namespace
}  // namespace rvhpc::analysis
