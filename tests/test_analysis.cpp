// Tests for rvhpc::analysis — the rule-based static-analysis engine.
//
// The contract under test: every shipped model (registry machines, the
// example .machine file, the full signature suite) lints clean; a
// deliberately-inconsistent fixture machine triggers each machine rule
// exactly once with the correct .machine line number; suppression and
// --werror semantics behave as documented.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "analysis/baseline.hpp"
#include "analysis/engine.hpp"
#include "analysis/render.hpp"
#include "analysis/source_model.hpp"
#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "model/signatures.hpp"

namespace rvhpc::analysis {
namespace {

using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

// ---------------------------------------------------------------------------
// Shipped models are clean.

class RegistryLint : public ::testing::TestWithParam<MachineId> {};
INSTANTIATE_TEST_SUITE_P(EveryRegistryMachine, RegistryLint,
                         ::testing::ValuesIn(arch::all_machines()),
                         [](const auto& pinfo) {
                           std::string n = arch::name_of(pinfo.param);
                           for (char& c : n) if (c == '-') c = '_';
                           return n;
                         });

TEST_P(RegistryLint, LintsClean) {
  const Report r = lint_machine(arch::machine(GetParam()));
  EXPECT_TRUE(r.empty()) << r.format();
}

TEST(LintRegistry, RegistryAndCalibrationClean) {
  const Report r = lint_registry();
  EXPECT_TRUE(r.empty()) << r.format();
}

TEST(LintSignatures, FullSuiteClean) {
  const Report r = lint_signature_suite();
  EXPECT_TRUE(r.empty()) << r.format();
}

TEST(LintFiles, Sg2046ExampleMachineLintsClean) {
  std::ifstream in(std::string(RVHPC_SOURCE_DIR) +
                   "/examples/machines/sg2046-hypothetical.machine");
  ASSERT_TRUE(in.good()) << "example machine file missing";
  const arch::ParsedMachine pm = arch::parse_machine(in);
  const Report r = lint_machine_file(pm, "sg2046-hypothetical.machine");
  EXPECT_TRUE(r.empty()) << r.format();
}

// ---------------------------------------------------------------------------
// The fixture: one machine, one violation per machine rule.
//
// A002 (opaque ddr_kind) is mutually exclusive with A001 (which needs a
// parseable ddr_kind), so it is exercised by its own fixture below.

constexpr const char* kFixture = R"(name = broken
isa = RV64GC
cores = 6
cluster_size = 2
core.clock_ghz = 9.0
core.out_of_order = false
core.decode_width = 1
core.issue_width = 2
core.sustained_scalar_opc = 1.8
core.miss_level_parallelism = 12
core.vector.isa = RVV v1.0
core.vector.width_bits = 192
cache = L1D 32768 8 64 1 4
cache = L2 262144 16 64 3 12
cache = L3 262144 16 64 6 30
memory.controllers = 2
memory.channels = 3
memory.ddr_kind = DDR4-3200
memory.channel_bw_gbs = 51.2
memory.stream_efficiency = 0.99
memory.idle_latency_ns = 500
memory.numa_regions = 4
memory.dram_gib = 0.0001
)";

/// Machine rule id -> the fixture line (1-based) its finding must point at.
const std::map<std::string, int>& fixture_expectations() {
  static const std::map<std::string, int> expected = {
      {"A001-bw-channel-mismatch", 19},       // memory.channel_bw_gbs
      {"A003-stream-efficiency-implausible", 20},
      {"A004-cluster-cache-mismatch", 14},    // the L2 cache line
      {"A005-cache-per-core-shrink", 15},     // the L3 cache line
      {"A006-isa-vector-mismatch", 11},       // core.vector.isa
      {"A007-vector-width-pow2", 12},
      {"A008-idle-latency-implausible", 21},
      {"A009-numa-core-split", 22},
      {"A010-clock-implausible", 5},
      {"A011-llc-exceeds-dram", 23},          // memory.dram_gib
      {"A012-opc-exceeds-decode", 9},
      {"A013-inorder-deep-mlp", 10},
      {"A014-channel-controller-split", 17},
  };
  return expected;
}

TEST(Fixture, TriggersEveryMachineRuleExactlyOnce) {
  const arch::ParsedMachine pm = arch::parse_machine(kFixture);
  const Report r = lint_machine_file(pm, "broken.machine");
  for (const auto& [rule, line] : fixture_expectations()) {
    EXPECT_EQ(r.by_rule(rule).size(), 1u) << rule << "\n" << r.format();
  }
  // ...and nothing else fires: the fixture's violations are disjoint.
  EXPECT_EQ(r.diagnostics.size(), fixture_expectations().size()) << r.format();
}

TEST(Fixture, DiagnosticsCarryTheOffendingLine) {
  const arch::ParsedMachine pm = arch::parse_machine(kFixture);
  const Report r = lint_machine_file(pm, "broken.machine");
  for (const auto& [rule, line] : fixture_expectations()) {
    const auto hits = r.by_rule(rule);
    ASSERT_EQ(hits.size(), 1u) << rule;
    EXPECT_EQ(hits[0].loc.line, line) << rule << ": " << hits[0].format();
    EXPECT_EQ(hits[0].loc.file, "broken.machine");
  }
}

TEST(Fixture, ContradictoryMemoryParametersYieldA001WithLineNumber) {
  // The acceptance-criteria case in isolation: DDR4-3200 cannot move
  // 51.2 GB/s down one channel (25.6 GB/s theoretical peak).
  const auto hits = lint_machine_file(arch::parse_machine(kFixture),
                                      "broken.machine")
                        .by_rule("A001");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::Error);
  EXPECT_EQ(hits[0].field, "memory.channel_bw_gbs");
  EXPECT_EQ(hits[0].loc.line, 19);
}

TEST(Fixture, OpaqueDdrKindYieldsA002NoteOnly) {
  arch::MachineModel m = arch::machine(MachineId::Sg2044);
  m.memory.ddr_kind = "HBM3";
  const Report r = lint_machine(m);
  ASSERT_EQ(r.diagnostics.size(), 1u) << r.format();
  EXPECT_EQ(r.by_rule("A002").size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Severity::Note);
}

// ---------------------------------------------------------------------------
// Suppression and werror semantics.

TEST(Options, SuppressionByPrefixAndFullId) {
  Report r = lint_machine(arch::parse_machine(kFixture).model);
  LintOptions opts;
  opts.suppressed = {"A001", "A006-isa-vector-mismatch"};
  const Report filtered = apply(std::move(r), opts);
  EXPECT_TRUE(filtered.by_rule("A001").empty());
  EXPECT_TRUE(filtered.by_rule("A006").empty());
  EXPECT_EQ(filtered.by_rule("A007").size(), 1u);  // untouched
}

TEST(Options, WerrorPromotesWarningsToErrors) {
  Report r = lint_machine(arch::parse_machine(kFixture).model);
  const std::size_t warns = r.count(Severity::Warn);
  ASSERT_GT(warns, 0u);
  const std::size_t errors = r.count(Severity::Error);
  LintOptions opts;
  opts.werror = true;
  const Report promoted = apply(std::move(r), opts);
  EXPECT_EQ(promoted.count(Severity::Warn), 0u);
  EXPECT_EQ(promoted.count(Severity::Error), errors + warns);
}

TEST(Options, MachineFileDirectiveSuppressesRules) {
  const std::string text =
      std::string("# rvhpc-lint: disable=A010,A013-inorder-deep-mlp\n") +
      kFixture;
  const arch::ParsedMachine pm = arch::parse_machine(text);
  const Report r = lint_machine_file(pm, "broken.machine");
  EXPECT_TRUE(r.by_rule("A010").empty()) << r.format();
  EXPECT_TRUE(r.by_rule("A013").empty()) << r.format();
  EXPECT_EQ(r.by_rule("A001").size(), 1u);
}

TEST(Options, RuleMatchingIsExactOrPrefix) {
  EXPECT_TRUE(rule_matches("A001-bw-channel-mismatch", "A001"));
  EXPECT_TRUE(rule_matches("A001-bw-channel-mismatch",
                           "A001-bw-channel-mismatch"));
  EXPECT_FALSE(rule_matches("A001-bw-channel-mismatch", "A00"));
  EXPECT_FALSE(rule_matches("A001-bw-channel-mismatch", "A002"));
  EXPECT_FALSE(rule_matches("A001-bw-channel-mismatch", ""));
}

// ---------------------------------------------------------------------------
// Signature rules: one bad signature per rule id.

model::WorkloadSignature good() {
  return model::signature(Kernel::MG, ProblemClass::C);
}

TEST(SignatureRules, FractionOutOfRangeIsA101) {
  auto s = good();
  s.vectorisable_fraction = 1.5;
  EXPECT_EQ(lint_signature(s).by_rule("A101").size(), 1u);
}

TEST(SignatureRules, MissingRandomFootprintIsA102) {
  auto s = good();
  s.random_access_per_op = 0.5;
  s.random_footprint_mib = 0.0;
  EXPECT_EQ(lint_signature(s).by_rule("A102").size(), 1u);
}

TEST(SignatureRules, FootprintBeyondWorkingSetIsA102) {
  auto s = good();
  s.random_access_per_op = 0.5;
  s.random_footprint_mib = s.working_set_mib * 2.0;
  EXPECT_EQ(lint_signature(s).by_rule("A102").size(), 1u);
}

TEST(SignatureRules, NonPositiveWorkIsA103) {
  auto s = good();
  s.total_mop = 0.0;
  EXPECT_EQ(lint_signature(s).by_rule("A103").size(), 1u);
}

TEST(SignatureRules, OddElementWidthIsA104) {
  auto s = good();
  s.element_bits = 16;
  EXPECT_EQ(lint_signature(s).by_rule("A104").size(), 1u);
}

TEST(SignatureRules, CacheLinePerOpExceededIsA105) {
  auto s = good();
  s.streamed_bytes_per_op = 128.0;
  EXPECT_EQ(lint_signature(s).by_rule("A105").size(), 1u);
}

TEST(SignatureRules, GatherWithoutVectorisationIsA106) {
  auto s = good();
  s.vectorisable_fraction = 0.0;
  s.gather_fraction = 0.5;
  EXPECT_EQ(lint_signature(s).by_rule("A106").size(), 1u);
}

TEST(SignatureRules, AlwaysHittingRandomAccessesAreA107) {
  auto s = good();
  s.random_access_per_op = 0.5;
  s.random_footprint_mib = 1.0;
  s.random_llc_hit_fraction = 1.0;
  EXPECT_EQ(lint_signature(s).by_rule("A107").size(), 1u);
}

TEST(SignatureRules, MoreBarriersThanOpsIsA108) {
  auto s = good();
  s.global_syncs = s.total_mop * 1e6 * 2.0;
  EXPECT_EQ(lint_signature(s).by_rule("A108").size(), 1u);
}

// ---------------------------------------------------------------------------
// Catalogue and rendering.

TEST(Catalogue, RuleIdsAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const RuleInfo& info : rule_catalogue()) {
    EXPECT_TRUE(seen.insert(info.id).second) << "duplicate id " << info.id;
    // A-family rules lint models/signatures/calibration; B-family lints
    // bench C++ sources; S-family lints the main sources (concurrency,
    // hot-path hygiene, syscall robustness).
    EXPECT_TRUE(info.id[0] == 'A' || info.id[0] == 'B' || info.id[0] == 'S')
        << info.id;
    EXPECT_NE(info.id.find('-'), std::string::npos) << info.id;
    EXPECT_FALSE(info.summary.empty()) << info.id;
  }
}

TEST(BenchSource, FlagsModelCallsInsideLoopsOnly) {
  const std::string src =
      "int main() {\n"
      "  double s = 0;\n"
      "  for (int c = 1; c <= 64; c *= 2) {\n"
      "    s += model::predict(m, sig, cfg).mops;\n"
      "  }\n"
      "  while (more()) s += model::at_cores(id, k, cls, 1).mops;\n"
      "  s += model::predict(m, sig, cfg).mops;  // straight-line: fine\n"
      "  for (int i = 0; i < 3; ++i) s += cache.predict(i);  // member: fine\n"
      "  for (int i = 0; i < 2; ++i) log(\"predict(x)\");  // string: fine\n"
      "  return s > 0;\n"
      "}\n";
  const Report r = lint_bench_source(src, "probe.cpp");
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(r.diagnostics[0].rule, "B001-direct-predict-sweep");
  EXPECT_EQ(r.diagnostics[0].loc.line, 4);
  EXPECT_EQ(r.diagnostics[0].field, "predict");
  EXPECT_EQ(r.diagnostics[1].loc.line, 6);
  EXPECT_EQ(r.diagnostics[1].field, "at_cores");
}

TEST(BenchSource, CommentsAndNestedBracesDoNotConfuseTheScanner) {
  const std::string src =
      "void f() {\n"
      "  /* for (;;) predict(a, b, c); */\n"
      "  // while (1) at_cores(i, k, c, 1);\n"
      "  for (int i = 0; i < 2; ++i) {\n"
      "    if (i) { g(); }\n"
      "  }\n"
      "  scale_cores(id, k, cls);\n"
      "}\n";
  EXPECT_TRUE(lint_bench_source(src, "clean.cpp").empty());
}

TEST(BenchSource, InFileDirectiveSuppressesB001) {
  const std::string src =
      "// rvhpc-lint: disable=B001 — times the raw call on purpose\n"
      "void bench() {\n"
      "  for (int i = 0; i < 9; ++i) keep(model::predict(m, sig, cfg));\n"
      "}\n";
  EXPECT_TRUE(lint_bench_source(src, "suppressed.cpp").empty());
}

TEST(BenchSource, ShippedBenchSourcesAreClean) {
  // The migration contract: no bench/example source sweeps the model
  // directly any more.  Runs over the two suppressed benches too — their
  // in-file directives must keep working.
  for (const char* rel :
       {"/bench/suite_summary.cpp", "/bench/calibration_check.cpp",
        "/bench/future_work.cpp", "/bench/micro_benchmarks.cpp",
        "/bench/obs_overhead.cpp", "/examples/paper_tour.cpp"}) {
    const std::string path = std::string(RVHPC_SOURCE_DIR) + rel;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream source;
    source << in.rdbuf();
    const Report r = lint_bench_source(source.str(), path);
    EXPECT_TRUE(r.empty()) << path << "\n" << r.format();
  }
}

TEST(Render, TableHasOneRowPerFinding) {
  const Report r = lint_machine(arch::parse_machine(kFixture).model);
  EXPECT_EQ(render_table(r).rows(), r.diagnostics.size());
  EXPECT_EQ(render_catalogue().rows(), rule_catalogue().size());
  EXPECT_NE(summarize(r).find("error"), std::string::npos);
}

TEST(Render, JsonCarriesFindingsAndSummary) {
  const std::string src =
      "struct Server { void run(); };\n"
      "void Server::run() { std::system(\"ls\"); system(cmd); }\n";
  const Report r = lint_source(src, "probe \"quoted\".cpp");
  ASSERT_FALSE(r.empty());
  const std::string json = render_json(r);
  EXPECT_NE(json.find("\"rule\": \"S001-blocking-call-in-event-loop\""),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("probe \\\"quoted\\\".cpp"), std::string::npos)
      << "file names must be JSON-escaped\n" << json;
  const Report none;
  EXPECT_NE(render_json(none).find("\"findings\": []"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The token-stream source model (source_model.hpp).

TEST(SourceModel, LexesRawStringsWithoutDesync) {
  // The old char-level B001 machine treated the `"` inside `)"` as a
  // string opener and swallowed the rest of the file.  The loop after the
  // raw string must still be scanned.
  const std::string src =
      "void f() {\n"
      "  const char* q = R\"(quote \" and predict( inside)\";\n"
      "  for (int i = 0; i < 2; ++i) keep(model::predict(m, sig, cfg));\n"
      "}\n";
  const Report r = lint_bench_source(src, "raw.cpp");
  ASSERT_EQ(r.by_rule("B001").size(), 1u) << r.format();
  EXPECT_EQ(r.diagnostics[0].loc.line, 3);
}

TEST(SourceModel, LexesEscapedCharLiteralsWithoutDesync) {
  // '\'' used to leave the scanner stuck in char-literal mode.
  const std::string src =
      "void f() {\n"
      "  char c = '\\'';\n"
      "  char d = '\\\\';\n"
      "  for (int i = 0; i < 2; ++i) keep(model::predict(m, sig, cfg));\n"
      "}\n";
  const Report r = lint_bench_source(src, "chars.cpp");
  ASSERT_EQ(r.by_rule("B001").size(), 1u) << r.format();
  EXPECT_EQ(r.diagnostics[0].loc.line, 4);
}

TEST(SourceModel, TokensCarryLinesAndDepths) {
  const SourceModel m = build_source_model(
      "int f(int a) {\n  return g(a, 1);\n}\n", "t.cpp");
  ASSERT_FALSE(m.tokens.empty());
  EXPECT_EQ(m.tokens.front().text, "int");
  EXPECT_EQ(m.tokens.front().line, 1);
  bool saw_g = false;
  for (const Token& t : m.tokens) {
    if (t.ident("g")) {
      saw_g = true;
      EXPECT_EQ(t.line, 2);
      EXPECT_EQ(t.brace_depth, 1);
    }
  }
  EXPECT_TRUE(saw_g);
}

TEST(SourceModel, HotRegionsComeFromAnnotationComments) {
  const std::string src =
      "int a;\n"
      "// rvhpc: hot-path begin — lookup\n"
      "int b;\n"
      "int c;\n"
      "// rvhpc: hot-path end\n"
      "int d;\n";
  const SourceModel m = build_source_model(src, "hot.cpp");
  ASSERT_EQ(m.hot_regions.size(), 1u);
  EXPECT_FALSE(m.in_hot_region(1));
  EXPECT_TRUE(m.in_hot_region(3));
  EXPECT_TRUE(m.in_hot_region(4));
  EXPECT_FALSE(m.in_hot_region(6));
}

TEST(SourceModel, DirectivesMustStartTheComment) {
  // Prose that merely mentions the markers (like engine.hpp's own docs)
  // must not disable rules or open hot regions.
  const std::string src =
      "// the directive `rvhpc-lint: disable=B001` is described here\n"
      "// and `rvhpc: hot-path begin` is only mentioned, not used\n"
      "int x;\n";
  const SourceModel m = build_source_model(src, "prose.cpp");
  EXPECT_TRUE(m.disabled_rules.empty());
  EXPECT_TRUE(m.hot_regions.empty());
}

TEST(SourceModel, DirectivesInsideStringLiteralsAreInert) {
  const std::string src =
      "const char* s = \"// rvhpc-lint: disable=S201\";\n"
      "void f() { write(1, s, 2); }\n";
  const Report r = lint_source(src, "str.cpp");
  EXPECT_EQ(r.by_rule("S201").size(), 1u) << r.format();
}

TEST(SourceStructure, FindsQualifiedFunctionNames) {
  const SourceModel m = build_source_model(
      "namespace n {\n"
      "struct Server {\n"
      "  void run();\n"
      "};\n"
      "void Server::run() {\n"
      "  go();\n"
      "}\n"
      "int free_fn(int a) { return a; }\n"
      "}  // namespace n\n",
      "s.cpp");
  const Structure st = analyze_structure(m);
  ASSERT_EQ(st.functions.size(), 2u);
  EXPECT_EQ(st.functions[0].name, "Server::run");
  EXPECT_EQ(st.functions[1].name, "free_fn");
}

TEST(SourceStructure, NamespaceScopeExcludesBodies) {
  const SourceModel m = build_source_model(
      "int g_flag = 0;\n"
      "void f() { int local = 0; use(local); }\n",
      "ns.cpp");
  const Structure st = analyze_structure(m);
  ASSERT_EQ(m.tokens.size(), st.namespace_scope.size());
  for (std::size_t i = 0; i < m.tokens.size(); ++i) {
    if (m.tokens[i].ident("g_flag")) EXPECT_TRUE(st.namespace_scope[i]);
    if (m.tokens[i].ident("local")) EXPECT_FALSE(st.namespace_scope[i]);
  }
}

// ---------------------------------------------------------------------------
// S-family rules: seeded fixtures under tests/data/lint/ and clean twins.

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(RVHPC_SOURCE_DIR) + "/tests/data/lint/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream src;
  src << in.rdbuf();
  return src.str();
}

Report lint_fixture(const std::string& name) {
  return lint_source(read_fixture(name), name);
}

TEST(SourceRules, BlockingCallFixtureTripsS001Only) {
  const Report r = lint_fixture("s001_blocking_loop.cpp");
  EXPECT_EQ(r.by_rule("S001").size(), 2u) << r.format();  // handle_line, flush
  EXPECT_EQ(r.diagnostics.size(), 2u) << r.format();
  EXPECT_EQ(r.by_rule("S001")[0].subject, "Server::run");
}

TEST(SourceRules, BlockingCallCleanTwinPasses) {
  EXPECT_TRUE(lint_fixture("s001_clean.cpp").empty());
}

TEST(SourceRules, SharedFlagFixtureTripsS002Only) {
  const Report r = lint_fixture("s002_flag.cpp");
  ASSERT_EQ(r.by_rule("S002").size(), 1u) << r.format();
  EXPECT_EQ(r.diagnostics.size(), 1u) << r.format();
  EXPECT_EQ(r.diagnostics[0].field, "g_done");
  EXPECT_EQ(r.diagnostics[0].loc.line, 7);
}

TEST(SourceRules, SharedFlagCleanTwinPasses) {
  EXPECT_TRUE(lint_fixture("s002_clean.cpp").empty());
}

TEST(SourceRules, LockOrderFixtureTripsS003Only) {
  const Report r = lint_fixture("s003_lock_order.cpp");
  ASSERT_EQ(r.by_rule("S003").size(), 1u) << r.format();
  EXPECT_EQ(r.diagnostics.size(), 1u) << r.format();
  EXPECT_NE(r.diagnostics[0].message.find("stats_mu"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("save_mu"), std::string::npos);
}

TEST(SourceRules, LockOrderCleanTwinPasses) {
  EXPECT_TRUE(lint_fixture("s003_clean.cpp").empty());
}

TEST(SourceRules, HotAllocationFixtureTripsS101Only) {
  const Report r = lint_fixture("s101_hot_alloc.cpp");
  EXPECT_EQ(r.by_rule("S101").size(), 2u)  // make_unique + new
      << r.format();
  EXPECT_EQ(r.diagnostics.size(), 2u) << r.format();
}

TEST(SourceRules, HotAllocationCleanTwinPasses) {
  EXPECT_TRUE(lint_fixture("s101_clean.cpp").empty());
}

TEST(SourceRules, IgnoredWriteFixtureTripsS201Only) {
  const Report r = lint_fixture("s201_ignored_write.cpp");
  EXPECT_EQ(r.by_rule("S201").size(), 2u) << r.format();  // write + rename
  EXPECT_EQ(r.diagnostics.size(), 2u) << r.format();
}

TEST(SourceRules, IgnoredWriteCleanTwinPasses) {
  EXPECT_TRUE(lint_fixture("s201_clean.cpp").empty());
}

// Inline cases for the rules without standalone fixtures.

TEST(SourceRules, DetachedThreadIsS004) {
  const std::string src =
      "#include <thread>\n"
      "void spawn() {\n"
      "  std::thread t(work);\n"
      "  t.detach();\n"
      "}\n";
  const Report r = lint_source(src, "detach.cpp");
  ASSERT_EQ(r.by_rule("S004").size(), 1u) << r.format();
  EXPECT_NE(r.diagnostics[0].message.find("detached"), std::string::npos);
}

TEST(SourceRules, UnjoinedThreadIsS004AndJoinedIsClean) {
  const std::string leak =
      "void spawn() {\n"
      "  std::thread t(work);\n"
      "  other();\n"
      "}\n";
  EXPECT_EQ(lint_source(leak, "leak.cpp").by_rule("S004").size(), 1u);
  const std::string joined =
      "void spawn() {\n"
      "  std::thread t(work);\n"
      "  t.join();\n"
      "}\n";
  EXPECT_TRUE(lint_source(joined, "joined.cpp").empty());
  const std::string moved =
      "void spawn(std::vector<std::thread>& pool) {\n"
      "  std::thread t(work);\n"
      "  pool.push_back(std::move(t));\n"
      "}\n";
  EXPECT_TRUE(lint_source(moved, "moved.cpp").by_rule("S004").empty());
}

TEST(SourceRules, HotPathStringCopiesAreS102) {
  const std::string src =
      "// rvhpc: hot-path begin — respond fast path\n"
      "std::string render(std::string key) {\n"
      "  return key;\n"
      "}\n"
      "// rvhpc: hot-path end\n";
  const Report r = lint_source(src, "copy.cpp");
  EXPECT_EQ(r.by_rule("S102").size(), 2u)  // by-value param + return
      << r.format();
  const std::string by_ref =
      "// rvhpc: hot-path begin\n"
      "void render(const std::string& key, std::string* out);\n"
      "// rvhpc: hot-path end\n";
  EXPECT_TRUE(lint_source(by_ref, "ref.cpp").empty());
}

TEST(SourceRules, HotPathToStringIsS103) {
  const std::string src =
      "void f(int v) {\n"
      "  // rvhpc: hot-path begin\n"
      "  use(std::to_string(v));\n"
      "  // rvhpc: hot-path end\n"
      "  use(std::to_string(v));  // cold: fine\n"
      "}\n";
  const Report r = lint_source(src, "tostring.cpp");
  EXPECT_EQ(r.by_rule("S103").size(), 1u) << r.format();
}

TEST(SourceRules, HotPathTemporaryKeysAreS104) {
  const std::string src =
      "int f(const std::map<std::string, int>& m, const std::string& k) {\n"
      "  // rvhpc: hot-path begin\n"
      "  int a = m.count(\"literal\");\n"
      "  auto it = m.find(std::string(\"built\"));\n"
      "  int b = m.count(k);  // existing string: fine\n"
      "  // rvhpc: hot-path end\n"
      "  return a + b + (it != m.end());\n"
      "}\n";
  const Report r = lint_source(src, "keys.cpp");
  EXPECT_EQ(r.by_rule("S104").size(), 2u) << r.format();
}

TEST(SourceRules, S002NeedsConcurrencyEvidence) {
  // The same flag pattern without any thread/signal machinery in the file
  // is a single-threaded counter, not a race.
  const std::string src =
      "int g_checks = 0;\n"
      "void claim() { ++g_checks; }\n"
      "int total() { return g_checks; }\n";
  EXPECT_TRUE(lint_source(src, "counter.cpp").empty());
}

TEST(SourceRules, S002SkipsLockProtectedGlobals) {
  const std::string src =
      "#include <mutex>\n"
      "#include <thread>\n"
      "std::mutex g_mu;\n"
      "int g_jobs = 0;\n"
      "void set(int n) { std::lock_guard lock(g_mu); g_jobs = n; }\n"
      "int get() { std::lock_guard lock(g_mu); return g_jobs; }\n";
  EXPECT_TRUE(lint_source(src, "locked.cpp").empty());
}

TEST(SourceRules, DisableDirectiveSuppressesSFamily) {
  const std::string src =
      "// rvhpc-lint: disable=S201 — demo code, failures acceptable\n"
      "void f(int fd) { write(fd, \"x\", 1); }\n";
  EXPECT_TRUE(lint_source(src, "off.cpp").empty());
}

// ---------------------------------------------------------------------------
// Baseline files.

TEST(Baseline, ParsesEntriesAndSkipsComments) {
  const Baseline b = parse_baseline(
      "# header comment\n"
      "\n"
      "S001 src/net/net.cpp handle_line\n"
      "B001 calibration_rules.cpp *\n",
      "bl.txt");
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(b.entries[0].rule, "S001");
  EXPECT_EQ(b.entries[0].field, "handle_line");
  EXPECT_EQ(b.entries[1].field, "*");
}

TEST(Baseline, MalformedLineThrows) {
  EXPECT_THROW(parse_baseline("S001 only-two\n", "bad.txt"),
               std::runtime_error);
  EXPECT_THROW(parse_baseline("S001 a b c-four\n", "bad.txt"),
               std::runtime_error);
}

TEST(Baseline, PathSuffixMatchesAtSlashBoundary) {
  Diagnostic d{"S001-blocking-call-in-event-loop", Severity::Warn,
               "Server::run", "flush", "msg", {"src/net/net.cpp", 10}};
  Baseline b;
  b.entries.push_back({"S001", "net.cpp", "*", 1});
  EXPECT_TRUE(b.matches(d));
  d.loc.file = "src/net/subnet.cpp";
  EXPECT_FALSE(b.matches(d)) << "suffix must anchor at a / boundary";
}

TEST(Baseline, ApplyDropsMatchesAndReportsStale) {
  Report r;
  r.add({"S001-blocking-call-in-event-loop", Severity::Warn, "s", "flush",
         "m", {"src/net/net.cpp", 1}});
  r.add({"S201-ignored-syscall-result", Severity::Warn, "s", "write", "m",
         {"src/serve/persist.cpp", 2}});
  Baseline b;
  b.entries.push_back({"S001", "net.cpp", "flush", 1});
  b.entries.push_back({"S003", "never.cpp", "*", 2});
  std::vector<BaselineEntry> stale;
  const Report left = apply_baseline(std::move(r), b, &stale);
  ASSERT_EQ(left.diagnostics.size(), 1u);
  EXPECT_EQ(left.diagnostics[0].rule, "S201-ignored-syscall-result");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "S003");
}

TEST(Baseline, AppliedBeforeWerrorPromotion) {
  // The gate contract: a baselined warning must never fail --werror.
  Report r;
  r.add({"S001-blocking-call-in-event-loop", Severity::Warn, "s",
         "handle_line", "m", {"src/net/net.cpp", 1}});
  Baseline b;
  b.entries.push_back({"S001", "net.cpp", "*", 1});
  Report left = apply_baseline(std::move(r), b, nullptr);
  LintOptions opts;
  opts.werror = true;
  left = apply(std::move(left), opts);
  EXPECT_FALSE(left.has_errors());
  EXPECT_TRUE(left.empty());
}

// ---------------------------------------------------------------------------
// The self-scan: the shipped src/ tree is clean modulo the checked-in
// baseline, and the baseline carries no stale entries.

TEST(SourceLint, SrcTreeIsCleanModuloBaseline) {
  const std::string root(RVHPC_SOURCE_DIR);
  Report r = lint_sources(root + "/src");
  const Baseline b = load_baseline(root + "/scripts/lint_baseline.txt");
  std::vector<BaselineEntry> stale;
  r = apply_baseline(std::move(r), b, &stale);
  EXPECT_TRUE(r.empty()) << "new findings in src/ — fix them or baseline "
                            "with a comment:\n"
                         << r.format();
  std::string stale_list;
  for (const BaselineEntry& e : stale) {
    stale_list += e.rule + " " + e.path + " " + e.field + "\n";
  }
  EXPECT_TRUE(stale.empty())
      << "stale baseline entries (fixed findings?):\n" << stale_list;
}

TEST(SourceLint, FindSourcesIsSortedAndThrowsOnMissingDir) {
  const std::vector<std::string> paths =
      find_sources(std::string(RVHPC_SOURCE_DIR) + "/src/analysis");
  ASSERT_FALSE(paths.empty());
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1], paths[i]);
  }
  EXPECT_THROW(find_sources("/nonexistent/rvhpc"), std::runtime_error);
}

}  // namespace
}  // namespace rvhpc::analysis
