// Tests for rvhpc::model roofline utilities and sweep drivers.

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "model/paper_reference.hpp"
#include "model/roofline.hpp"
#include "model/sweep.hpp"

namespace rvhpc::model {
namespace {

using arch::MachineId;

TEST(Roofline, PeaksScaleWithCores) {
  const auto& m = arch::machine(MachineId::Sg2044);
  const CompilerConfig cc{CompilerId::Gcc15_2, true};
  const Roofline r1 = roofline(m, 1, cc);
  const Roofline r64 = roofline(m, 64, cc);
  EXPECT_NEAR(r64.peak_gops / r1.peak_gops, 64.0, 0.5);
  EXPECT_GT(r64.bandwidth_gbs, r1.bandwidth_gbs);
  EXPECT_GT(r64.balance_ops_per_byte, r1.balance_ops_per_byte);
}

TEST(Roofline, AttainableIsMinOfRoofs) {
  const Roofline r{100.0, 50.0, 2.0};
  EXPECT_DOUBLE_EQ(attainable_gops(r, 0.5), 25.0);   // bandwidth side
  EXPECT_DOUBLE_EQ(attainable_gops(r, 10.0), 100.0); // compute side
  EXPECT_DOUBLE_EQ(attainable_gops(r, 2.0), 100.0);  // the ridge
  EXPECT_DOUBLE_EQ(attainable_gops(r, -1.0), 0.0);
}

TEST(Roofline, ScalarCompilerLowersComputeRoof) {
  const auto& m = arch::machine(MachineId::Sg2044);
  const Roofline vec = roofline(m, 64, {CompilerId::Gcc15_2, true});
  const Roofline sca = roofline(m, 64, {CompilerId::Gcc15_2, false});
  EXPECT_GT(vec.peak_gops, sca.peak_gops);
  EXPECT_DOUBLE_EQ(vec.bandwidth_gbs, sca.bandwidth_gbs);
}

TEST(Roofline, IntensityOfComputeKernelIsHuge) {
  EXPECT_GT(arithmetic_intensity(signature(Kernel::EP, ProblemClass::C)), 1e6);
  EXPECT_LT(arithmetic_intensity(signature(Kernel::MG, ProblemClass::C)), 1.0);
}

TEST(Sweep, PowerOfTwoCoresAlwaysEndsAtMax) {
  EXPECT_EQ(power_of_two_cores(64),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(power_of_two_cores(26), (std::vector<int>{1, 2, 4, 8, 16, 26}));
  EXPECT_EQ(power_of_two_cores(1), (std::vector<int>{1}));
}

TEST(Sweep, SeriesCoversTheMachine) {
  const auto s = scale_cores(MachineId::Xeon8170, Kernel::MG, ProblemClass::C);
  ASSERT_FALSE(s.points.empty());
  EXPECT_EQ(s.points.front().cores, 1);
  EXPECT_EQ(s.points.back().cores, 26);
  for (const auto& p : s.points) EXPECT_TRUE(p.prediction.ran);
}

TEST(Sweep, TimesFasterIsReciprocal) {
  const double ab = times_faster(MachineId::Epyc7742, MachineId::Sg2044,
                                 Kernel::BT, ProblemClass::C, 16);
  const double ba = times_faster(MachineId::Sg2044, MachineId::Epyc7742,
                                 Kernel::BT, ProblemClass::C, 16);
  EXPECT_NEAR(ab * ba, 1.0, 1e-9);
}

TEST(Sweep, TimesFasterZeroWhenDnr) {
  EXPECT_EQ(times_faster(MachineId::Xeon8170, MachineId::Sg2044, Kernel::EP,
                         ProblemClass::C, 64),
            0.0);  // Skylake has 26 cores
}

TEST(PaperReference, TablesAreComplete) {
  EXPECT_EQ(paper::table1().size(), 8u);
  EXPECT_EQ(paper::table2().size(), 35u);  // 5 kernels x 7 machines
  EXPECT_EQ(paper::table3_single_core().size(), 5u);
  EXPECT_EQ(paper::table4_64_cores().size(), 5u);
  EXPECT_EQ(paper::table6().size(), 12u);  // 3 apps x 4 core counts
  EXPECT_EQ(paper::table7_single_core().size(), 5u);
  EXPECT_EQ(paper::table8_64_cores().size(), 5u);
}

TEST(PaperReference, HeadlineNumbers) {
  // The abstract's 4.91x is IS at 64 cores.
  const auto& t4 = paper::table4_64_cores();
  EXPECT_NEAR(t4.front().sg2044_mops / t4.front().sg2042_mops, 4.91, 0.01);
  // Exactly one DNR cell in Table 2 (FT on the D1).
  int dnr = 0;
  for (const auto& row : paper::table2()) {
    if (!row.mops) ++dnr;
  }
  EXPECT_EQ(dnr, 1);
  EXPECT_FALSE(paper::table2_mops(Kernel::FT, MachineId::AllwinnerD1));
  EXPECT_TRUE(paper::table2_mops(Kernel::IS, MachineId::Sg2044));
  EXPECT_FALSE(paper::table2_mops(Kernel::IS, MachineId::Epyc7742));
}

TEST(PaperReference, Table1StallsAreTheDocumentedOnes) {
  for (const auto& row : paper::table1()) {
    if (row.kernel == Kernel::IS || row.kernel == Kernel::EP) {
      EXPECT_EQ(row.ddr_stall_pct, 0.0);
    }
    if (row.kernel == Kernel::MG) EXPECT_EQ(row.ddr_bw_bound_pct, 88.0);
  }
}

}  // namespace
}  // namespace rvhpc::model
