#!/usr/bin/env bash
# check.sh — the one-command tier-1 + static-analysis gate.
#
# Configures an ASan+UBSan build, builds everything, gates src/ on the
# S-family source rules against the checked-in baseline (new concurrency/
# hot-path/syscall findings fail; accepted ones live in
# scripts/lint_baseline.txt with a reason), runs the full test suite under
# the sanitizers, smoke-runs every bench binary (so the figure/table
# generators cannot silently rot), runs rvhpc-lint in --werror mode over
# the registry, the signature suite, every example .machine file and every
# bench/example C++ source (B001: no predict sweeps bypassing the engine,
# plus the S-family), replays the checked-in serve fixture cold
# and warm through rvhpc-serve (bit-identical outputs, >= 90% warm cache
# hits) plus the rvhpc-serve --gate, serves the same fixture over loopback
# TCP with --shards=2 to two concurrent rvhpc-clients (merged responses
# byte-identical to the stdio replay, graceful SIGTERM drain), serves it
# again over HTTP/1.1 (curl batch POST + rvhpc-client --http, /metrics
# and /healthz probed, graceful drain), then re-runs the threaded
# tests under TSan to catch data races in the thread pool and the net
# event loop.  Exits non-zero on the first failure.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-check"}"

generator=()
if command -v ninja > /dev/null 2>&1; then
  generator=(-G Ninja)
fi

echo "== configure (ASan+UBSan) -> $build_dir"
cmake -B "$build_dir" -S "$repo_root" "${generator[@]}" \
  -DRVHPC_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build"
cmake --build "$build_dir" -j

echo "== rvhpc-lint --sources src --werror (baselined: new findings fail)"
"$build_dir/src/analysis/rvhpc-lint" --werror \
  --sources "$repo_root/src" --baseline "$repo_root/scripts/lint_baseline.txt"

echo "== ctest (sanitized)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "== bench smoke-runs (every figure/table generator must still run)"
found_bench=0
for exe in "$build_dir"/bench/*; do
  [ -f "$exe" ] && [ -x "$exe" ] || continue
  case "$(basename "$exe")" in
    *.cmake|CMakeFiles) continue ;;
    micro_benchmarks)
      args=(--benchmark_filter=PredictSingleCall --benchmark_min_time=0.01) ;;
    obs_overhead|engine_throughput)
      args=(--gate) ;;
    backend_calibration)
      # The analytic-vs-interval agreement gate: model arithmetic only, no
      # wall-clock assertions, so it must pass on single-CPU runners.  The
      # JSON artifact goes to the build dir — the checked-in
      # BENCH_calibration.json is regenerated deliberately, not on every CI
      # run.
      args=(--gate "--out=$build_dir/BENCH_calibration.smoke.json") ;;
    serve_throughput)
      # Front-end ordering gate (always enforced); the 1.5x speedup bar
      # self-skips on sanitized builds and < 4 hardware threads, like
      # engine_throughput.  The checked-in BENCH_serve.json is regenerated
      # deliberately, not on every CI run.
      args=(--gate "--out=$build_dir/BENCH_serve.smoke.json") ;;
    http_throughput)
      # HTTP framing gate: correctness always, the 1.25x overhead bar
      # self-skips on sanitized builds and single-thread hosts.
      args=(--gate "--out=$build_dir/BENCH_serve.http.smoke.json") ;;
    topo_scaling)
      # Topology gate: backend bottleneck agreement + the two literature
      # scaling shapes.  Pure model arithmetic, single-CPU safe.  The
      # checked-in BENCH_topo.json is regenerated deliberately, not on
      # every CI run.
      args=(--gate "--out=$build_dir/BENCH_topo.smoke.json") ;;
    *)
      args=() ;;
  esac
  found_bench=1
  echo "-- $(basename "$exe")"
  "$exe" "${args[@]}" > /dev/null
done
if [ "$found_bench" -eq 0 ]; then
  echo "error: no bench binaries found under $build_dir/bench/" >&2
  exit 1
fi

echo "== rvhpc-lint --werror: registry + signature suite"
"$build_dir/src/analysis/rvhpc-lint" --werror

echo "== rvhpc-lint --werror: examples/machines/"
found=0
for f in "$repo_root"/examples/machines/*.machine; do
  [ -e "$f" ] || continue
  found=1
  echo "-- $f"
  "$build_dir/src/analysis/rvhpc-lint" --werror "$f"
done
if [ "$found" -eq 0 ]; then
  echo "error: no .machine files found under examples/machines/" >&2
  exit 1
fi

echo "== rvhpc-lint --werror: bench/ and examples/ sources (B001 + S-family)"
"$build_dir/src/analysis/rvhpc-lint" --werror \
  "$repo_root"/bench/*.cpp "$repo_root"/examples/*.cpp

echo "== rvhpc-serve: cold+warm replay (bit-identical, >= 90% warm hits)"
serve="$build_dir/src/serve/rvhpc-serve"
fixture="$repo_root/tests/data/serve_replay20.jsonl"
serve_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp"' EXIT
"$serve" --replay="$fixture" --cache-file="$serve_tmp/replay.cache" \
  --out="$serve_tmp/cold.jsonl" 2> "$serve_tmp/cold.log"
"$serve" --replay="$fixture" --cache-file="$serve_tmp/replay.cache" \
  --out="$serve_tmp/warm.jsonl" 2> "$serve_tmp/warm.log"
cmp "$serve_tmp/cold.jsonl" "$serve_tmp/warm.jsonl"
hit_rate="$(sed -n 's/.*cache-hit-rate: \([0-9.]*\)%.*/\1/p' \
  "$serve_tmp/warm.log")"
if [ -z "$hit_rate" ] ||
   ! awk -v r="$hit_rate" 'BEGIN { exit !(r >= 90.0) }'; then
  echo "error: warm replay cache-hit-rate '${hit_rate:-?}' is below 90%" >&2
  exit 1
fi
echo "-- warm replay bit-identical to cold, cache-hit-rate ${hit_rate}%"

echo "== rvhpc-serve --gate"
(cd "$serve_tmp" && "$serve" --gate)

echo "== rvhpc-serve --listen=tcp: concurrent clients match the stdio replay"
# The transport gate: serve the fixture over loopback TCP — on two event
# loop shards — to two clients running at once, SIGTERM the server, and
# require (a) the merged per-id responses byte-identical to the stdio
# replay output and (b) a graceful drain.  The fixture's requests carry
# ids, so responses may legally complete out of order across the two
# shards — the sort before cmp keeps the comparison order-insensitive,
# and each client exits non-zero unless every id it sent came back.  Two
# clients interleave regardless of core count, so this passes on
# single-CPU runners — no wall-clock assertions.
client="$build_dir/src/net/rvhpc-client"
awk 'NR % 2 == 1' "$fixture" > "$serve_tmp/half_a.jsonl"
awk 'NR % 2 == 0' "$fixture" > "$serve_tmp/half_b.jsonl"
"$serve" --listen=tcp:0 --shards=2 --no-live-fields \
  --cache-file="$serve_tmp/tcp.cache" 2> "$serve_tmp/net.log" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$serve_tmp/net.log")"
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "error: rvhpc-serve never reported its TCP port" >&2
  kill "$serve_pid" 2> /dev/null || true
  exit 1
fi
"$client" --connect="127.0.0.1:$port" --in="$serve_tmp/half_a.jsonl" \
  --out="$serve_tmp/out_a.jsonl" 2> /dev/null &
client_a=$!
"$client" --connect="127.0.0.1:$port" --in="$serve_tmp/half_b.jsonl" \
  --out="$serve_tmp/out_b.jsonl" 2> /dev/null &
client_b=$!
wait "$client_a" "$client_b"
kill -TERM "$serve_pid"
wait "$serve_pid"  # the drain must be graceful: exit 0, not a crash
cat "$serve_tmp/out_a.jsonl" "$serve_tmp/out_b.jsonl" | LC_ALL=C sort \
  > "$serve_tmp/tcp_merged.jsonl"
LC_ALL=C sort "$serve_tmp/cold.jsonl" > "$serve_tmp/stdio_sorted.jsonl"
cmp "$serve_tmp/tcp_merged.jsonl" "$serve_tmp/stdio_sorted.jsonl"
grep -q "net: drained" "$serve_tmp/net.log"
echo "-- $(wc -l < "$serve_tmp/tcp_merged.jsonl") responses over TCP," \
  "byte-identical to the stdio replay; drain was graceful"

echo "== rvhpc-serve --http: curl-able predictions match the stdio replay"
# The HTTP front-end gate: serve the same fixture over HTTP/1.1 — a
# curl batch POST streamed back chunked, plus rvhpc-client --http — and
# require the sorted responses byte-identical to the stdio replay, the
# per-route request counter on /metrics, a drain-aware /healthz and a
# graceful SIGTERM drain.  curl is optional (rvhpc-client --http always
# runs); ids make the sort order-insensitive exactly like the TCP gate.
"$serve" --http=tcp:0 --shards=2 --no-live-fields \
  --cache-file="$serve_tmp/http.cache" 2> "$serve_tmp/http.log" &
http_pid=$!
hport=""
for _ in $(seq 1 100); do
  hport="$(sed -n 's/.*http: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$serve_tmp/http.log")"
  [ -n "$hport" ] && break
  sleep 0.1
done
if [ -z "$hport" ]; then
  echo "error: rvhpc-serve never reported its HTTP port" >&2
  kill "$http_pid" 2> /dev/null || true
  exit 1
fi
if command -v curl > /dev/null 2>&1; then
  # --data-binary, not -d: -d strips the newlines that delimit the batch.
  curl -sS --data-binary "@$fixture" "http://127.0.0.1:$hport/v1/predict" \
    | LC_ALL=C sort > "$serve_tmp/http_curl.jsonl"
  cmp "$serve_tmp/http_curl.jsonl" "$serve_tmp/stdio_sorted.jsonl"
  curl -sS "http://127.0.0.1:$hport/healthz" | grep -q '"serving"'
  curl -sS "http://127.0.0.1:$hport/metrics" \
    | grep -q 'rvhpc_http_requests_total{route="/v1/predict",status="200"}'
  echo "-- curl batch POST byte-identical to the stdio replay;" \
    "/metrics and /healthz answer"
else
  echo "-- curl not found; relying on rvhpc-client --http"
fi
"$client" --http --connect="127.0.0.1:$hport" --in="$fixture" \
  --out="$serve_tmp/http_client.jsonl" 2> /dev/null
LC_ALL=C sort "$serve_tmp/http_client.jsonl" \
  > "$serve_tmp/http_client_sorted.jsonl"
cmp "$serve_tmp/http_client_sorted.jsonl" "$serve_tmp/stdio_sorted.jsonl"
kill -TERM "$http_pid"
wait "$http_pid"  # the drain must be graceful: exit 0, not a crash
grep -q "net: drained" "$serve_tmp/http.log"
echo "-- rvhpc-client --http byte-identical to the stdio replay;" \
  "drain was graceful"

echo "== configure (TSan) -> $build_dir-tsan"
# TSan cannot combine with ASan, so the thread pool's owners get their own
# build; the engine, obs and serve tests run there — they own all the
# threading in the library.
cmake -B "$build_dir-tsan" -S "$repo_root" "${generator[@]}" \
  -DRVHPC_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
# test_analysis rides along: its source-rule fixtures (S002 flag races,
# S003 lock inversions) describe exactly the bugs TSan hunts, and the
# self-scan keeps the baseline honest under a second compiler config.
# test_sim exercises two concurrent memsim consumers (interval backend +
# stall profiler), which only TSan can vouch for.
# test_topo spins up domain-pinned thread pools (TopoPlacement) — the
# placement counter and worker handoff belong under TSan too.
cmake --build "$build_dir-tsan" -j \
  --target test_engine test_obs test_serve test_net test_http test_analysis \
  test_sim test_topo
echo "== TSan: test_engine + test_obs + test_serve + test_net + test_http" \
  "+ test_analysis + test_sim + test_topo"
"$build_dir-tsan/tests/test_engine"
"$build_dir-tsan/tests/test_obs"
"$build_dir-tsan/tests/test_serve"
"$build_dir-tsan/tests/test_net"
"$build_dir-tsan/tests/test_http"
"$build_dir-tsan/tests/test_analysis"
"$build_dir-tsan/tests/test_sim"
"$build_dir-tsan/tests/test_topo"

echo "== all gates green"
