// quickstart — five-minute tour of the rvhpc public API.
//
// 1. Look up a machine from the registry and print its description.
// 2. Batch-predict a benchmark's performance on it at several core counts
//    through the rvhpc::engine evaluator.
// 3. Compare two machines head to head.
// 4. Inspect where the model says the time goes.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "arch/registry.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/roofline.hpp"
#include "model/sweep.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

int main() {
  // --- 1. machines ----------------------------------------------------------
  const arch::MachineModel& sg2044 = arch::machine(MachineId::Sg2044);
  std::cout << "Machine: " << sg2044.summary() << "\n\n";

  // --- 2. predict MG class C as the chip fills up ---------------------------
  // Build the points into a RequestSet and evaluate them as one batch:
  // the engine fans requests across a thread pool, memoises repeats, and
  // returns results in request order.
  std::cout << "MG (class C) on the SG2044, paper compiler setup:\n";
  engine::RequestSet set;
  for (int cores : {1, 4, 16, 64}) {
    set.add_paper_setup(MachineId::Sg2044, Kernel::MG, ProblemClass::C, cores);
  }
  report::Table t({"cores", "Mop/s", "GB/s drawn", "bottleneck"});
  for (const auto& r : engine::default_evaluator().evaluate(set)) {
    t.add_row({std::to_string(set.requests()[r.index].config().cores),
               report::fmt(r.prediction.mops, 0),
               report::fmt(r.prediction.achieved_bw_gbs, 1),
               to_string(r.prediction.breakdown.dominant)});
  }
  std::cout << t.render() << "\n";

  // --- 3. head to head ------------------------------------------------------
  const double ratio = model::times_faster(MachineId::Sg2044, MachineId::Sg2042,
                                           Kernel::IS, ProblemClass::C, 64);
  std::cout << "SG2044 vs SG2042 on IS, 64 cores: " << report::fmt(ratio, 2)
            << "x faster (the paper's headline is 4.91x)\n\n";

  // --- 4. why: the roofline view --------------------------------------------
  const auto rl = model::roofline(sg2044, 64, {model::CompilerId::Gcc15_2, true});
  std::cout << "SG2044 64-core roofline: " << report::fmt(rl.peak_gops, 0)
            << " Gop/s compute, " << report::fmt(rl.bandwidth_gbs, 0)
            << " GB/s memory, balance point "
            << report::fmt(rl.balance_ops_per_byte, 2) << " op/byte\n";
  const auto sig = model::signature(Kernel::MG, ProblemClass::C);
  std::cout << "MG arithmetic intensity: "
            << report::fmt(model::arithmetic_intensity(sig), 2)
            << " op/byte -> attainable "
            << report::fmt(
                   model::attainable_gops(rl, model::arithmetic_intensity(sig)),
                   0)
            << " Gop/s (bandwidth side of the roof)\n";
  return 0;
}
