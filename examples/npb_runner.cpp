// npb_runner — runs the from-scratch NPB suite on the host machine.
//
// Usage: npb_runner [class] [threads]
//   class:   S | W | A | B | C   (default S)
//   threads: OpenMP thread count (default: hardware)
//
// This executes the real benchmark codes (deliverable (b) of the repo);
// the paper-reproduction numbers come from the model-driven bench/
// binaries, not from host execution.

#include <omp.h>

#include <iostream>
#include <string>

#include "npb/bt.hpp"
#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/is.hpp"
#include "npb/lu.hpp"
#include "npb/mg.hpp"
#include "npb/sp.hpp"

using namespace rvhpc;
using npb::ProblemClass;

namespace {

ProblemClass parse_class(const std::string& s) {
  if (s == "W") return ProblemClass::W;
  if (s == "A") return ProblemClass::A;
  if (s == "B") return ProblemClass::B;
  if (s == "C") return ProblemClass::C;
  return ProblemClass::S;
}

}  // namespace

int main(int argc, char** argv) {
  const ProblemClass cls = parse_class(argc > 1 ? argv[1] : "S");
  const int threads = argc > 2 ? std::stoi(argv[2]) : omp_get_max_threads();

  std::cout << "NPB (from scratch) class " << model::to_string(cls) << ", "
            << threads << " threads\n\n";
  int failures = 0;
  auto report = [&](const npb::BenchResult& r) {
    std::cout << to_string(r) << "\n";
    if (!r.verified) ++failures;
  };
  report(npb::is::run(cls, threads));
  report(npb::ep::run(cls, threads));
  report(npb::cg::run(cls, threads));
  report(npb::mg::run(cls, threads));
  report(npb::ft::run(cls, threads));
  report(npb::bt::run(cls, threads));
  report(npb::sp::run(cls, threads));
  report(npb::lu::run(cls, threads));
  return failures == 0 ? 0 : 1;
}
