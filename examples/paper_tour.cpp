// paper_tour — a guided, narrated walk through the whole reproduction:
// the fourth example application.  Prints each of the paper's claims, the
// model's verdict, and where to look for the full table.
//
// Build & run:  ./build/examples/paper_tour

#include <iostream>

#include "engine/batch.hpp"
#include "model/paper_reference.hpp"
#include "model/sweep.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineId;
using model::Kernel;
using model::ProblemClass;

namespace {

int g_checks = 0, g_passed = 0;

void claim(const std::string& what, bool holds, const std::string& detail,
           const std::string& bench) {
  ++g_checks;
  if (holds) ++g_passed;
  std::cout << (holds ? "  [holds] " : "  [MISS ] ") << what << "\n"
            << "          " << detail << "  (full table: bench/" << bench
            << ")\n";
}

double ratio_4442(Kernel k, int cores) {
  return model::times_faster(MachineId::Sg2044, MachineId::Sg2042, k,
                             ProblemClass::C, cores);
}

}  // namespace

int main() {
  std::cout << "A tour of \"Is RISC-V ready for HPC?\" (SC'25), claim by "
               "claim\n\n";

  std::cout << "§3/Table 2 — single-core RISC-V landscape\n";
  const double sg = model::at_cores(MachineId::Sg2044, Kernel::EP,
                                    ProblemClass::B, 1).mops;
  const double k1 = model::at_cores(MachineId::BananaPiF3, Kernel::EP,
                                    ProblemClass::B, 1).mops;
  claim("the C920v2 dominates every commodity RISC-V board",
        sg > 1.8 * k1,
        "EP class B: SG2044 " + report::fmt(sg, 1) + " vs best board " +
            report::fmt(k1, 1) + " Mop/s",
        "table2_riscv_single_core");

  std::cout << "\n§4/Tables 3-4 — the generational story\n";
  claim("single-core gains are modest (1.08-1.30x)",
        ratio_4442(Kernel::EP, 1) < 1.6 && ratio_4442(Kernel::IS, 1) > 1.0,
        "model: IS " + report::fmt(ratio_4442(Kernel::IS, 1), 2) + "x, EP " +
            report::fmt(ratio_4442(Kernel::EP, 1), 2) + "x",
        "table3_sg2042_single");
  claim("64-core gains are large and led by the memory-bound kernels",
        ratio_4442(Kernel::IS, 64) > 3.5 &&
            ratio_4442(Kernel::IS, 64) > ratio_4442(Kernel::EP, 64),
        "model: IS " + report::fmt(ratio_4442(Kernel::IS, 64), 2) + "x vs EP " +
            report::fmt(ratio_4442(Kernel::EP, 64), 2) + "x",
        "table4_sg2042_multicore");

  std::cout << "\n§5/Figures 1-6 — against the HPC establishment\n";
  const auto bw44 = model::at_cores(MachineId::Sg2044, Kernel::StreamCopy,
                                    ProblemClass::C, 64).achieved_bw_gbs;
  const auto bw42 = model::at_cores(MachineId::Sg2042, Kernel::StreamCopy,
                                    ProblemClass::C, 64).achieved_bw_gbs;
  claim("STREAM bandwidth >3x the SG2042 at 64 cores", bw44 > 3.0 * bw42,
        report::fmt(bw44, 0) + " vs " + report::fmt(bw42, 0) + " GB/s",
        "fig1_stream_bandwidth");
  const double mg44 = model::at_cores(MachineId::Sg2044, Kernel::MG,
                                      ProblemClass::C, 64).mops;
  const double mg_sky = model::at_cores(MachineId::Xeon8170, Kernel::MG,
                                        ProblemClass::C, 26).mops;
  claim("full-chip MG competitive with the full Skylake",
        mg44 > 0.6 * mg_sky && mg44 < 1.8 * mg_sky,
        report::fmt(mg44, 0) + " vs " + report::fmt(mg_sky, 0) + " Mop/s",
        "fig3_mg_scaling");
  const double cg44 = model::at_cores(MachineId::Sg2044, Kernel::CG,
                                      ProblemClass::C, 64).mops;
  const double cg_tx2 = model::at_cores(MachineId::ThunderX2, Kernel::CG,
                                        ProblemClass::C, 32).mops;
  claim("64 SG2044 cores beat the full 32-core ThunderX2 on CG",
        cg44 > cg_tx2,
        report::fmt(cg44, 0) + " vs " + report::fmt(cg_tx2, 0) + " Mop/s",
        "fig5_cg_scaling");

  std::cout << "\n§6/Tables 7-8 — compilers and the CG pathology\n";
  const auto& m = arch::machine(MachineId::Sg2044);
  model::RunConfig vec{1, {model::CompilerId::Gcc15_2, true},
                       model::ThreadPlacement::OsDefault};
  model::RunConfig novec{1, {model::CompilerId::Gcc15_2, false},
                         model::ThreadPlacement::OsDefault};
  const auto sig = model::signature(Kernel::CG, ProblemClass::C);
  auto& evaluator = engine::default_evaluator();
  const double pathology = evaluator.evaluate_one(m, sig, novec).mops /
                           evaluator.evaluate_one(m, sig, vec).mops;
  claim("vectorised CG is ~3x slower on the C920v2",
        pathology > 2.0 && pathology < 4.0,
        "scalar/vector = " + report::fmt(pathology, 2) + "x",
        "table7_compiler_single");

  std::cout << "\n" << g_passed << "/" << g_checks
            << " paper claims hold in the reproduction.\n";
  return g_passed == g_checks ? 0 : 1;
}
