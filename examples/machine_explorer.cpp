// machine_explorer — dump every machine in the registry with its modelled
// capabilities, and sweep any (machine, kernel) pair from the command line.
//
// Usage:
//   machine_explorer                    # list machines
//   machine_explorer sg2044 CG          # scaling table for one pair
//   machine_explorer my-cpu.machine CG  # ...for a custom machine file
//   machine_explorer --dump sg2044      # print a machine-file template
//   machine_explorer sg2044 CG --trace=t.json  # also write a Chrome trace

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "arch/registry.hpp"
#include "arch/serialize.hpp"
#include "arch/validate.hpp"
#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/roofline.hpp"
#include "model/sweep.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using model::Kernel;
using model::ProblemClass;

namespace {

Kernel parse_kernel(const std::string& s) {
  for (Kernel k : model::npb_all()) {
    if (to_string(k) == s) return k;
  }
  throw std::invalid_argument("unknown kernel '" + s +
                              "' (expected IS/MG/EP/CG/FT/BT/LU/SP)");
}

void list_machines() {
  report::Table t({"name", "part", "cores", "clock", "vector", "sustained GB/s",
                   "peak Gop/s (vec)"});
  for (arch::MachineId id : arch::all_machines()) {
    const auto& m = arch::machine(id);
    t.add_row({m.name, m.part, std::to_string(m.cores),
               report::fmt(m.core.clock_ghz, 2) + " GHz",
               to_string(m.core.vector.isa),
               report::fmt(m.memory.chip_stream_bw_gbs(), 1),
               report::fmt(m.peak_vector_gflops(), 0)});
  }
  std::cout << t.render()
            << "\nRun `machine_explorer <name> <kernel>` for a scaling "
               "sweep, e.g. `machine_explorer sg2044 CG`.\n";
}

/// Registry name, or a path to a machine description file (detected by an
/// existing file of that name).  File-backed machines are linted before
/// use: diagnostics print with their `.machine` line numbers, and errors
/// abort instead of producing silently wrong predictions.
arch::MachineModel resolve_machine(const std::string& name) {
  std::ifstream in(name);
  if (!in.good()) return arch::machine(name);
  const arch::ParsedMachine pm = arch::parse_machine(in);
  const analysis::Report lint = analysis::lint_machine_file(pm, name);
  if (!lint.empty()) std::cerr << lint.format();
  if (lint.has_errors()) {
    throw std::runtime_error("machine file '" + name +
                             "' fails lint (see diagnostics above); fix it "
                             "or suppress with '# rvhpc-lint: disable=...'");
  }
  return pm.model;
}

void sweep(const std::string& name, const std::string& kernel_name) {
  const arch::MachineModel m = resolve_machine(name);
  const auto issues = arch::validate(m);
  if (!issues.empty()) {
    std::cerr << "machine fails validation:\n" << arch::format_issues(issues);
    throw std::runtime_error("machine '" + name + "' fails validation");
  }
  const Kernel k = parse_kernel(kernel_name);
  std::cout << m.summary() << "\n\n"
            << to_string(k) << " class C, paper compiler setup:\n";
  report::Table t({"cores", "Mop/s", "seconds", "GB/s", "bottleneck",
                   "vectorised"});
  // The whole curve as one engine batch (works for file-backed machines
  // too — requests carry the MachineModel by value).
  engine::RequestSet set;
  for (int cores : model::power_of_two_cores(m.cores)) {
    set.add_paper_setup(m, k, ProblemClass::C, cores);
  }
  for (const auto& r : engine::default_evaluator().evaluate(set)) {
    const int cores = set.requests()[r.index].config().cores;
    const model::Prediction& p = r.prediction;
    if (!p.ran) {
      t.add_row({std::to_string(cores), "DNR: " + p.dnr_reason});
      continue;
    }
    t.add_row({std::to_string(cores), report::fmt(p.mops, 1),
               report::fmt(p.seconds, 2), report::fmt(p.achieved_bw_gbs, 1),
               to_string(p.breakdown.dominant),
               p.vector.vectorised ? "yes" : "no"});
  }
  std::cout << t.render();
}

}  // namespace

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  try {
    cli::apply_jobs_flag(argc, argv);
    std::optional<std::string> trace_path;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace=", 0) == 0) {
        trace_path = arg.substr(std::string("--trace=").size());
      } else if (arg.rfind("--jobs=", 0) == 0) {
        // consumed by apply_jobs_flag
      } else {
        args.push_back(arg);
      }
    }

    std::optional<obs::SessionScope> scope;
    if (trace_path) scope.emplace();

    if (args.size() >= 2 && args[0] == "--dump") {
      std::cout << arch::to_text(arch::machine(args[1]));
    } else if (args.size() >= 2) {
      sweep(args[0], args[1]);
    } else {
      list_machines();
    }

    if (scope) {
      obs::write_file(*trace_path, obs::chrome_trace_json(scope->session()));
      std::cerr << "trace written to " << *trace_path << " ("
                << scope->session().event_count() << " records)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
