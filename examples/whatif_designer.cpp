// whatif_designer — use the model the way an architect would: start from
// the SG2044 and ask which of the paper's upgrade levers actually bought
// the performance, plus what a hypothetical "SG2046" would need next.
//
// This exercises the library's ability to evaluate *custom* machine
// descriptions, not just the registry entries.  Pass --trace=<file> to
// capture every lever evaluation as a Chrome trace with attribution
// records (open in chrome://tracing or feed to rvhpc tooling).

#include <iostream>
#include <optional>
#include <string>

#include "analysis/engine.hpp"
#include "arch/registry.hpp"
#include "arch/validate.hpp"
#include "cli/cli.hpp"
#include "engine/batch.hpp"
#include "engine/request.hpp"
#include "model/sweep.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"

using namespace rvhpc;
using arch::MachineModel;
using model::Kernel;
using model::ProblemClass;

namespace {

constexpr Kernel kColumns[] = {Kernel::IS, Kernel::MG, Kernel::EP, Kernel::CG,
                               Kernel::FT};

void row(report::Table& t, const std::string& label, const MachineModel& m) {
  const auto issues = arch::validate(m);
  if (!issues.empty()) {
    std::cerr << label << " invalid:\n" << arch::format_issues(issues);
    return;
  }
  // A designed machine can be structurally valid yet physically absurd
  // (that is the whole failure mode of what-if exploration) — lint it too.
  const analysis::Report lint = analysis::lint_machine(m);
  if (!lint.empty()) std::cerr << lint.format();
  if (lint.has_errors()) {
    std::cerr << label << ": skipped (lint errors above)\n";
    return;
  }
  // The row's five full-chip cells as one engine batch — the lever
  // machines are custom descriptions, carried by value in the requests.
  engine::RequestSet set;
  for (Kernel k : kColumns) {
    set.add_paper_setup(m, k, ProblemClass::C, m.cores);
  }
  const auto results = engine::default_evaluator().evaluate(set);
  std::vector<std::string> cells = {label};
  for (const auto& r : results) cells.push_back(report::fmt(r.prediction.mops, 0));
  t.add_row(cells);
}

}  // namespace

// Accepts --jobs=N: worker threads for the batch evaluation (0 = every
// hardware thread; see cli::apply_jobs_flag).
int main(int argc, char** argv) {
  cli::apply_jobs_flag(argc, argv);
  std::optional<std::string> trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace=").size());
    }
  }
  std::optional<obs::SessionScope> scope;
  if (trace_path) scope.emplace();

  std::cout << "What made the SG2044 fast?  Full-chip class C Mop/s under "
               "single-lever changes.\n\n";
  const MachineModel& sg2042 = arch::machine(arch::MachineId::Sg2042);
  const MachineModel& sg2044 = arch::machine(arch::MachineId::Sg2044);

  report::Table t({"configuration", "IS", "MG", "EP", "CG", "FT"});
  row(t, "SG2042 (baseline)", sg2042);

  // Lever 1: only the clock bump (2.0 -> 2.6 GHz).
  MachineModel clocked = sg2042;
  clocked.name = "sg2042+clock";
  clocked.core.clock_ghz = sg2044.core.clock_ghz;
  row(t, "SG2042 + 2.6 GHz clock", clocked);

  // Lever 2: only the memory subsystem (32 controllers/channels of DDR5).
  MachineModel fed = sg2042;
  fed.name = "sg2042+memory";
  fed.memory = sg2044.memory;
  row(t, "SG2042 + SG2044 memory", fed);

  // Lever 3: only RVV 1.0 (mainline compiler can vectorise).
  MachineModel vec = sg2042;
  vec.name = "sg2042+rvv10";
  vec.core.vector = sg2044.core.vector;
  row(t, "SG2042 + RVV 1.0", vec);

  row(t, "SG2044 (all levers)", sg2044);

  // A hypothetical next generation: wider vectors and more bandwidth.
  MachineModel next = sg2044;
  next.name = "sg2046-hypothetical";
  next.part = "hypothetical SG2046";
  next.core.clock_ghz = 3.0;
  next.core.vector.width_bits = 256;
  next.core.vector.gather_efficiency = 0.5;  // fixed gather path
  next.memory.channel_bw_gbs *= 1.5;         // DDR5-6400
  next.memory.per_core_bw_gbs *= 1.5;
  row(t, "hypothetical SG2046", next);

  std::cout << t.render()
            << "\nReading: the memory lever dominates IS/MG/CG/FT at full "
               "chip — exactly the\npaper's conclusion — while EP only moves "
               "with the clock/vector levers.  The\nhypothetical part shows "
               "CG finally profiting from vectorisation once the\ngather "
               "path is fixed (gather_efficiency 0.18 -> 0.5).\n";

  if (scope) {
    try {
      obs::write_file(*trace_path, obs::chrome_trace_json(scope->session()));
      std::cerr << "trace written to " << *trace_path << " ("
                << scope->session().event_count() << " records)\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}
